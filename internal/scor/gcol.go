package scor

import (
	"fmt"

	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/gtgraph"
	"scord/internal/mem"
)

// workSentinel marks an exhausted work queue in currHead.
const workSentinel = 0xFFFFFFFF

// GCOL is the Graph Coloring benchmark of Table II: speculative parallel
// coloring with per-round conflict resolution (Deveci et al. style), over
// an R-MAT graph. Vertex partitions are deliberately imbalanced so blocks
// that finish early steal work with the exact Figure 3 pattern: a leader
// thread advances its own block's nextHead with a device-scope atomic (the
// common case), and steals from a victim's nextHead with a device-scope
// atomic when its partition runs dry.
//
// Injections (6, the paper's richest application):
//   - "own-atomic":    nextHead advanced with block scope (Figure 3b's bug)
//   - "steal-atomic":  stealing advance uses block scope
//   - "head-nosync":   workers read currHead before the barrier
//   - "conflict-atomic": conflict marks use block-scope atomics
//   - "publish-fence": per-round stats published with a block-scope fence
//   - "publish-weak":  per-round stats published with a weak store
type GCOL struct {
	V, E      int
	Blocks    int
	TPB       int
	Chunk     int
	MaxRounds int
}

// NewGCOL returns the benchmark at its default scaled-down size.
func NewGCOL() *GCOL {
	return &GCOL{V: 4096, E: 8192, Blocks: 16, TPB: 128, Chunk: 32, MaxRounds: 12}
}

// Name implements Benchmark.
func (g *GCOL) Name() string { return "GCOL" }

// Injections implements Benchmark.
func (g *GCOL) Injections() []string {
	return []string{"own-atomic", "steal-atomic", "head-nosync", "conflict-atomic", "publish-fence", "publish-weak"}
}

// ExpectedRaces implements Benchmark.
func (g *GCOL) ExpectedRaces(active []string) []RaceSpec {
	csCascade := []core.RaceKind{core.RaceMissingBlockFence, core.RaceMissingDeviceFence, core.RaceNotStrong}
	var specs []RaceSpec
	if has(active, "own-atomic") {
		specs = append(specs,
			RaceSpec{
				ID:    "gcol.own.block-atomic",
				Alloc: "gcol.nextHead",
				Kinds: []core.RaceKind{core.RaceScopedAtomic},
			},
			// Cascade: per-SM head views double-assign vertices, so two
			// blocks write the same colorsOut entries.
			RaceSpec{ID: "gcol.own.block-atomic", Alloc: "gcol.colorsOut", Kinds: csCascade})
	}
	if has(active, "steal-atomic") {
		specs = append(specs,
			RaceSpec{
				ID:    "gcol.steal.block-atomic",
				Alloc: "gcol.nextHead",
				Kinds: []core.RaceKind{core.RaceScopedAtomic},
			},
			RaceSpec{ID: "gcol.steal.block-atomic", Alloc: "gcol.colorsOut", Kinds: csCascade})
	}
	if has(active, "head-nosync") {
		specs = append(specs,
			RaceSpec{
				ID:    "gcol.head.nosync",
				Alloc: "gcol.currHead",
				Kinds: []core.RaceKind{core.RaceMissingBlockFence, core.RaceNotStrong},
			},
			// Cascade of the same bug: stale heads make two warps process
			// one chunk, racing on the colors they write.
			RaceSpec{
				ID:    "gcol.head.nosync",
				Alloc: "gcol.currOwner",
				Kinds: []core.RaceKind{core.RaceMissingBlockFence, core.RaceNotStrong},
			},
			RaceSpec{
				ID:    "gcol.head.nosync",
				Alloc: "gcol.colorsOut",
				Kinds: []core.RaceKind{core.RaceMissingBlockFence, core.RaceMissingDeviceFence, core.RaceNotStrong},
			})
	}
	if has(active, "conflict-atomic") {
		specs = append(specs, RaceSpec{
			ID:    "gcol.conflict.block-atomic",
			Alloc: "gcol.conflicts",
			Kinds: []core.RaceKind{core.RaceScopedAtomic},
		})
	}
	if has(active, "publish-fence") {
		specs = append(specs, RaceSpec{
			ID:    "gcol.publish.block-fence",
			Alloc: "gcol.coloredCount",
			Kinds: []core.RaceKind{core.RaceMissingDeviceFence},
		})
	}
	if has(active, "publish-weak") {
		// When combined with publish-fence, the fence condition fires
		// first and subsumes the strength violation on the same record.
		specs = append(specs, RaceSpec{
			ID:    "gcol.publish.weak",
			Alloc: "gcol.coloredCount",
			Kinds: []core.RaceKind{core.RaceNotStrong, core.RaceMissingDeviceFence},
		})
	}
	return specs
}

// partitions returns deliberately skewed [start, end) vertex (or edge)
// ranges: the first block gets a triple share so other blocks finish first
// and steal from it, making work stealing deterministic.
func partitions(total, blocks int) (start, end []uint32) {
	start = make([]uint32, blocks)
	end = make([]uint32, blocks)
	weight := blocks + 2 // first block weight 3, others 1
	unit := total / weight
	cursor := 0
	for b := 0; b < blocks; b++ {
		share := unit
		if b == 0 {
			share = 3 * unit
		}
		if b == blocks-1 {
			share = total - cursor
		}
		start[b] = uint32(cursor)
		end[b] = uint32(cursor + share)
		cursor += share
	}
	return start, end
}

// getWork is the leader-thread work-fetch of Figure 3: advance the own
// partition's head, else scan for a victim and steal.
func getWork(c *gpu.Ctx, nextHead mem.Addr, pEnd []uint32, chunk int, ownScope, stealScope gpu.Scope) (head uint32, owner int) {
	b := c.Block
	h := c.Site("gcol.getwork.own").AtomicAdd(nextHead+mem.Addr(b*4), uint32(chunk), ownScope)
	if h < pEnd[b] {
		return h, b
	}
	blocks := len(pEnd)
	for i := 1; i < blocks; i++ {
		v := (b + i) % blocks
		probe := c.Site("gcol.getwork.probe").AtomicAdd(nextHead+mem.Addr(v*4), 0, gpu.ScopeDevice)
		if probe >= pEnd[v] {
			continue
		}
		h = c.Site("gcol.getwork.steal").AtomicAdd(nextHead+mem.Addr(v*4), uint32(chunk), stealScope)
		if h < pEnd[v] {
			return h, v
		}
	}
	return workSentinel, -1
}

// Run implements Benchmark.
func (g *GCOL) Run(d *gpu.Device, active []string) error {
	validateInjections(g, active)
	graph := gtgraph.RMAT(g.V, g.E, d.Config().Seed+0xC01)
	warps := g.TPB / d.Config().WarpSize

	rowPtr := d.Alloc("gcol.rowPtr", g.V+1)
	colIdx := d.Alloc("gcol.colIdx", len(graph.Col))
	colorsIn := d.Alloc("gcol.colorsIn", g.V)
	colorsOut := d.Alloc("gcol.colorsOut", g.V)
	conflicts := d.Alloc("gcol.conflicts", g.V)
	nextHead := d.Alloc("gcol.nextHead", g.Blocks)
	currHead := d.Alloc("gcol.currHead", g.Blocks)
	currOwner := d.Alloc("gcol.currOwner", g.Blocks)
	edgeU := d.Alloc("gcol.edgeU", graph.Edges())
	edgeW := d.Alloc("gcol.edgeW", graph.Edges())
	coloredCount := d.Alloc("gcol.coloredCount", g.Blocks)
	arriveCtr := d.Alloc("gcol.arrive", 1)
	totalColored := d.Alloc("gcol.total", 1)

	row32 := make([]uint32, g.V+1)
	for i, v := range graph.RowPtr {
		row32[i] = uint32(v)
	}
	col32 := make([]uint32, len(graph.Col))
	for i, v := range graph.Col {
		col32[i] = uint32(v)
	}
	d.Mem().HostWrite(rowPtr, row32)
	d.Mem().HostWrite(colIdx, col32)
	eu := make([]uint32, 0, graph.Edges())
	ew := make([]uint32, 0, graph.Edges())
	for u := 0; u < g.V; u++ {
		for _, w := range graph.Neighbors(u) {
			if int32(u) < w {
				eu = append(eu, uint32(u))
				ew = append(ew, uint32(w))
			}
		}
	}
	d.Mem().HostWrite(edgeU, eu)
	d.Mem().HostWrite(edgeW, ew)

	pStart, pEnd := partitions(g.V, g.Blocks)

	ownScope, stealScope := gpu.ScopeDevice, gpu.ScopeDevice
	if has(active, "own-atomic") {
		ownScope = gpu.ScopeBlock
	}
	if has(active, "steal-atomic") {
		stealScope = gpu.ScopeBlock
	}
	headNoSync := has(active, "head-nosync")
	conflictScope := gpu.ScopeDevice
	if has(active, "conflict-atomic") {
		conflictScope = gpu.ScopeBlock
	}
	publishFence := gpu.ScopeDevice
	if has(active, "publish-fence") {
		publishFence = gpu.ScopeBlock
	}
	publishWeak := has(active, "publish-weak")

	assignKernel := func(c *gpu.Ctx) {
		perWarp := (g.Chunk + warps - 1) / warps
		// A correctly synchronized run can hand one block at most the
		// whole vertex set; the budget only bites when injected
		// block-scope heads make stealing re-issue chunks forever.
		budget := g.V/g.Chunk + 8
		for {
			if c.Warp == 0 {
				h, owner := uint32(workSentinel), -1
				if budget > 0 {
					budget--
					h, owner = getWork(c, nextHead, pEnd, g.Chunk, ownScope, stealScope)
				}
				c.Site("gcol.head.store").Store(currHead+mem.Addr(c.Block*4), h)
				c.Site("gcol.owner.store").Store(currOwner+mem.Addr(c.Block*4), uint32(int32(owner)))
			}
			if headNoSync && c.Warp != 0 {
				// Injected bug: read the head before the barrier.
				c.Site("gcol.head.load").Load(currHead + mem.Addr(c.Block*4))
			}
			c.SyncThreads()
			h := c.Site("gcol.head.load").Load(currHead + mem.Addr(c.Block*4))
			owner := int32(c.Site("gcol.owner.load").Load(currOwner + mem.Addr(c.Block*4)))
			if h == workSentinel {
				return
			}
			lo := int(h) + c.Warp*perWarp
			hi := min(int(h)+(c.Warp+1)*perWarp, int(h)+g.Chunk)
			hi = min(hi, int(pEnd[owner]))
			for v := lo; v < hi; v++ {
				if c.Load(colorsIn+mem.Addr(v*4)) != 0 {
					continue
				}
				r0 := c.Load(rowPtr + mem.Addr(v*4))
				r1 := c.Load(rowPtr + mem.Addr((v+1)*4))
				var used uint64
				for e := r0; e < r1; e++ {
					nb := c.Load(colIdx + mem.Addr(e*4))
					nc := c.Load(colorsIn + mem.Addr(nb*4))
					if nc > 0 && nc < 64 {
						used |= 1 << nc
					}
				}
				c.Work(int(r1-r0) + 2)
				color := uint32(1)
				for used&(1<<color) != 0 {
					color++
				}
				c.Site("gcol.colors.assign").Store(colorsOut+mem.Addr(v*4), color)
			}
			c.SyncThreads()
		}
	}

	conflictKernel := func(c *gpu.Ctx) {
		ws := c.WarpSize
		total := len(eu)
		per := (total + g.Blocks*warps - 1) / (g.Blocks * warps)
		lo := c.GlobalWarp() * per
		hi := min(lo+per, total)
		addrs := make([]mem.Addr, 0, ws)
		for base := lo; base < hi; base += ws {
			n := min(ws, hi-base)
			us := append([]uint32(nil), c.LoadVec(c.Seq(edgeU+mem.Addr(base*4), n), false)...)
			wsV := append([]uint32(nil), c.LoadVec(c.Seq(edgeW+mem.Addr(base*4), n), false)...)
			addrs = addrs[:0]
			for i := 0; i < n; i++ {
				addrs = append(addrs, colorsOut+mem.Addr(us[i]*4))
			}
			cu := append([]uint32(nil), c.LoadVec(addrs, false)...)
			addrs = addrs[:0]
			for i := 0; i < n; i++ {
				addrs = append(addrs, colorsOut+mem.Addr(wsV[i]*4))
			}
			cw := append([]uint32(nil), c.LoadVec(addrs, false)...)
			for i := 0; i < n; i++ {
				if cu[i] != 0 && cu[i] == cw[i] {
					// Conflict: the smaller-id endpoint must recolor.
					loser := us[i]
					if wsV[i] < loser {
						loser = wsV[i]
					}
					c.Site("gcol.conflict.mark").AtomicExch(conflicts+mem.Addr(loser*4), 1, conflictScope)
				}
			}
			c.Work(n / 4)
		}
	}

	applyKernel := func(c *gpu.Ctx) {
		per := (g.V + g.Blocks*warps - 1) / (g.Blocks * warps)
		lo := c.GlobalWarp() * per
		hi := min(lo+per, g.V)
		colored := uint32(0)
		for v := lo; v < hi; v++ {
			in := c.Load(colorsIn + mem.Addr(v*4))
			if in != 0 {
				colored++
				continue
			}
			out := c.Load(colorsOut + mem.Addr(v*4))
			if c.Load(conflicts+mem.Addr(v*4)) != 0 {
				out = 0
			}
			c.Store(colorsIn+mem.Addr(v*4), out)
			if out != 0 {
				colored++
			}
		}
		// Fold per-warp counts with a block-scope atomic, then the leader
		// publishes the block total for the last block to sum.
		c.Site("gcol.blockcount").AtomicAdd(coloredCount+mem.Addr(c.Block*4), colored, gpu.ScopeBlock)
		c.SyncThreads()
		if c.Warp != 0 {
			return
		}
		cnt := c.AtomicAdd(coloredCount+mem.Addr(c.Block*4), 0, gpu.ScopeBlock)
		if publishWeak {
			//scord:allow(scopelint/weakmixed) the "weak" injection publishes through a weak store on purpose
			c.Site("gcol.publish").Store(coloredCount+mem.Addr(c.Block*4), cnt)
		} else {
			c.Site("gcol.publish").StoreV(coloredCount+mem.Addr(c.Block*4), cnt)
		}
		c.Fence(publishFence)
		if Arrive(c, arriveCtr) == uint32(c.Blocks) {
			sum := uint32(0)
			for _, v := range c.Site("gcol.publish.sum").LoadVec(c.Seq(coloredCount, c.Blocks), true) {
				sum += v
			}
			c.StoreV(totalColored, sum)
		}
	}

	rounds := 0
	for ; rounds < g.MaxRounds; rounds++ {
		d.Mem().HostWrite(nextHead, pStart)
		d.Mem().HostFill(conflicts, g.V, 0)
		d.Mem().HostFill(coloredCount, g.Blocks, 0)
		d.Mem().HostFill(arriveCtr, 1, 0)
		if err := d.Launch("gcol.assign", g.Blocks, g.TPB, assignKernel); err != nil {
			return err
		}
		if err := d.Launch("gcol.conflict", g.Blocks, g.TPB, conflictKernel); err != nil {
			return err
		}
		if err := d.Launch("gcol.apply", g.Blocks, g.TPB, applyKernel); err != nil {
			return err
		}
		if d.Mem().Read(totalColored) == uint32(g.V) {
			rounds++
			break
		}
	}

	if len(active) == 0 {
		colors := d.Mem().HostRead(colorsIn, g.V)
		for v := 0; v < g.V; v++ {
			if colors[v] == 0 {
				return fmt.Errorf("gcol: vertex %d uncolored after %d rounds", v, rounds)
			}
			for _, w := range graph.Neighbors(v) {
				if colors[v] == colors[w] {
					return fmt.Errorf("gcol: adjacent vertices %d,%d share color %d", v, w, colors[v])
				}
			}
		}
	}
	return nil
}
