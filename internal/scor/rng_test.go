package scor

import (
	"fmt"
	"testing"
)

// Regression: the old linear mix (Seed*0x5851f42d + salt) collided for
// pairs whose seed delta cancels the salt delta — e.g. seed 1 with salt
// 0x5851f42d against seed 2 with salt 0 — so two different workloads drew
// identical input streams. The splitmix64 mix must keep every (seed, salt)
// pair on this grid distinct.
func TestMixSeedNoCollisions(t *testing.T) {
	// The suite's live salts plus adversarial values around the old
	// collision structure.
	salts := []int64{
		0x33, 0x9ed, 0x110, 0x1dc, 0x075, // benchmark salts
		0, 1, -1, 0x5851f42d, -0x5851f42d, 2 * 0x5851f42d,
	}
	seen := make(map[int64]string)
	for seed := int64(-8); seed <= 64; seed++ {
		for _, salt := range salts {
			got := mixSeed(seed, salt)
			pair := fmt.Sprintf("(seed=%d, salt=%#x)", seed, salt)
			if prev, dup := seen[got]; dup {
				t.Fatalf("mixSeed collision: %s and %s both map to %#x", pair, prev, uint64(got))
			}
			seen[got] = pair
		}
	}

	// The specific pair the linear mix collided on.
	if mixSeed(1, 0x5851f42d) == mixSeed(2, 0) {
		t.Fatal("legacy collision pair (1, 0x5851f42d) vs (2, 0) still collides")
	}
}

// mixSeed must stay deterministic: identical inputs, identical stream seed.
func TestMixSeedDeterministic(t *testing.T) {
	for _, tc := range [][2]int64{{1, 0x33}, {7, 0x9ed}, {-3, 0x075}} {
		if mixSeed(tc[0], tc[1]) != mixSeed(tc[0], tc[1]) {
			t.Fatalf("mixSeed(%d, %d) not deterministic", tc[0], tc[1])
		}
	}
}
