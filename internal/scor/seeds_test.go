package scor_test

import (
	"testing"

	"scord/internal/config"
	"scord/internal/gpu"
	"scord/internal/scor"
)

// TestSuiteAcrossSeeds re-runs the applications at different workload
// seeds: correct configurations must stay functionally correct and
// detector-clean, and the interleaving-dependent work-stealing injections
// must still be caught. This guards against the suite's detection results
// depending on one lucky input.
func TestSuiteAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []int64{2, 3, 17} {
		for _, b := range scor.Apps() {
			b, seed := b, seed
			t.Run(b.Name()+"/clean", func(t *testing.T) {
				cfg := config.Default().WithDetector(config.ModeFull4B)
				cfg.Seed = seed
				d, err := gpu.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := b.Run(d, nil); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, r := range d.Races() {
					t.Errorf("seed %d false positive: %s", seed, d.DescribeRecord(r))
				}
			})
		}
		// The most interleaving-sensitive injections.
		sensitive := []struct {
			b   scor.Benchmark
			inj string
		}{
			{scor.NewGCOL(), "own-atomic"},
			{scor.NewGCOL(), "steal-atomic"},
			{scor.NewGCON(), "own-atomic"},
			{scor.NewUTS(), "glock-cas-block"},
		}
		for _, s := range sensitive {
			s, seed := s, seed
			t.Run(s.b.Name()+"/"+s.inj, func(t *testing.T) {
				cfg := config.Default().WithDetector(config.ModeFull4B)
				cfg.Seed = seed
				d, err := gpu.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.b.Run(d, []string{s.inj}); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				res := scor.MatchRaces(d, s.b.ExpectedRaces([]string{s.inj}))
				if len(res.Missed) > 0 {
					t.Errorf("seed %d missed: %v", seed, res.Missed)
				}
			})
		}
	}
}
