package scor

import (
	"fmt"

	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/gtgraph"
	"scord/internal/mem"
)

// GCON is the Graph Connectivity benchmark of Table II: connected
// components by label propagation (Sutton et al. style) — every vertex
// starts labelled with its own id and edges repeatedly propagate the
// maximum label with device-scope atomicMax until a fixed point. Edge
// ranges are distributed across blocks with the same skewed partitions and
// Figure 3 work-stealing pattern as GCOL.
//
// Injections (5):
//   - "own-atomic":    own nextHead advanced with block scope
//   - "steal-atomic":  stealing advance uses block scope
//   - "label-atomic":  label atomicMax uses block scope
//   - "publish-fence": per-round change counts published with a block fence
//   - "publish-weak":  per-round change counts published with a weak store
type GCON struct {
	V, E      int
	Blocks    int
	TPB       int
	Chunk     int
	MaxRounds int
}

// NewGCON returns the benchmark at its default scaled-down size.
func NewGCON() *GCON {
	return &GCON{V: 8192, E: 20480, Blocks: 16, TPB: 128, Chunk: 64, MaxRounds: 40}
}

// Name implements Benchmark.
func (g *GCON) Name() string { return "GCON" }

// Injections implements Benchmark.
func (g *GCON) Injections() []string {
	return []string{"own-atomic", "steal-atomic", "label-atomic", "publish-fence", "publish-weak"}
}

// ExpectedRaces implements Benchmark.
func (g *GCON) ExpectedRaces(active []string) []RaceSpec {
	var specs []RaceSpec
	if has(active, "own-atomic") {
		specs = append(specs, RaceSpec{
			ID:    "gcon.own.block-atomic",
			Alloc: "gcon.nextHead",
			Kinds: []core.RaceKind{core.RaceScopedAtomic},
		})
	}
	if has(active, "steal-atomic") {
		specs = append(specs, RaceSpec{
			ID:    "gcon.steal.block-atomic",
			Alloc: "gcon.nextHead",
			Kinds: []core.RaceKind{core.RaceScopedAtomic},
		})
	}
	if has(active, "label-atomic") {
		specs = append(specs, RaceSpec{
			ID:    "gcon.label.block-atomic",
			Alloc: "gcon.labels",
			Kinds: []core.RaceKind{core.RaceScopedAtomic},
		})
	}
	if has(active, "publish-fence") {
		specs = append(specs, RaceSpec{
			ID:    "gcon.publish.block-fence",
			Alloc: "gcon.changed",
			Kinds: []core.RaceKind{core.RaceMissingDeviceFence},
		})
	}
	if has(active, "publish-weak") {
		// The fence condition subsumes the strength violation when the
		// publish-fence injection is active simultaneously.
		specs = append(specs, RaceSpec{
			ID:    "gcon.publish.weak",
			Alloc: "gcon.changed",
			Kinds: []core.RaceKind{core.RaceNotStrong, core.RaceMissingDeviceFence},
		})
	}
	return specs
}

// Run implements Benchmark.
func (g *GCON) Run(d *gpu.Device, active []string) error {
	validateInjections(g, active)
	graph := gtgraph.RMAT(g.V, g.E, d.Config().Seed+0xC02)
	warps := g.TPB / d.Config().WarpSize
	nEdges := graph.Edges()

	labels := d.Alloc("gcon.labels", g.V)
	edgeU := d.Alloc("gcon.edgeU", nEdges)
	edgeW := d.Alloc("gcon.edgeW", nEdges)
	nextHead := d.Alloc("gcon.nextHead", g.Blocks)
	currHead := d.Alloc("gcon.currHead", g.Blocks)
	currOwner := d.Alloc("gcon.currOwner", g.Blocks)
	changed := d.Alloc("gcon.changed", g.Blocks)
	arriveCtr := d.Alloc("gcon.arrive", 1)
	totalChanged := d.Alloc("gcon.total", 1)

	init := make([]uint32, g.V)
	for i := range init {
		init[i] = uint32(i)
	}
	d.Mem().HostWrite(labels, init)
	eu := make([]uint32, 0, nEdges)
	ew := make([]uint32, 0, nEdges)
	for u := 0; u < g.V; u++ {
		for _, w := range graph.Neighbors(u) {
			if int32(u) < w {
				eu = append(eu, uint32(u))
				ew = append(ew, uint32(w))
			}
		}
	}
	d.Mem().HostWrite(edgeU, eu)
	d.Mem().HostWrite(edgeW, ew)

	pStart, pEnd := partitions(nEdges, g.Blocks)

	ownScope, stealScope := gpu.ScopeDevice, gpu.ScopeDevice
	if has(active, "own-atomic") {
		ownScope = gpu.ScopeBlock
	}
	if has(active, "steal-atomic") {
		stealScope = gpu.ScopeBlock
	}
	labelScope := gpu.ScopeDevice
	if has(active, "label-atomic") {
		labelScope = gpu.ScopeBlock
	}
	publishFence := gpu.ScopeDevice
	if has(active, "publish-fence") {
		publishFence = gpu.ScopeBlock
	}
	publishWeak := has(active, "publish-weak")

	propagate := func(c *gpu.Ctx) {
		ws := c.WarpSize
		perWarp := (g.Chunk + warps - 1) / warps
		var nChanged uint32
		lblAddrs := make([]mem.Addr, 0, ws)
		maxAddrs := make([]mem.Addr, 0, ws)
		maxVals := make([]uint32, 0, ws)

		// Termination guard against injected block-scope heads (see GCOL).
		budget := nEdges/g.Chunk + 8
		for {
			if c.Warp == 0 {
				h, owner := uint32(workSentinel), -1
				if budget > 0 {
					budget--
					h, owner = getWork(c, nextHead, pEnd, g.Chunk, ownScope, stealScope)
				}
				c.Site("gcon.head.store").Store(currHead+mem.Addr(c.Block*4), h)
				c.Site("gcon.owner.store").Store(currOwner+mem.Addr(c.Block*4), uint32(int32(owner)))
			}
			c.SyncThreads()
			h := c.Site("gcon.head.load").Load(currHead + mem.Addr(c.Block*4))
			owner := int32(c.Site("gcon.owner.load").Load(currOwner + mem.Addr(c.Block*4)))
			if h == workSentinel {
				break
			}
			lo := int(h) + c.Warp*perWarp
			hi := min(int(h)+(c.Warp+1)*perWarp, int(h)+g.Chunk)
			hi = min(hi, int(pEnd[owner]))
			for base := lo; base < hi; base += ws {
				n := min(ws, hi-base)
				us := append([]uint32(nil), c.LoadVec(c.Seq(edgeU+mem.Addr(base*4), n), false)...)
				wsV := append([]uint32(nil), c.LoadVec(c.Seq(edgeW+mem.Addr(base*4), n), false)...)
				// Labels are concurrently updated by atomicMax, so reads
				// must be atomic too.
				lblAddrs = lblAddrs[:0]
				for i := 0; i < n; i++ {
					lblAddrs = append(lblAddrs, labels+mem.Addr(us[i]*4))
				}
				lu := append([]uint32(nil), c.Site("gcon.label.read").AtomicReadVec(lblAddrs, labelScope)...)
				lblAddrs = lblAddrs[:0]
				for i := 0; i < n; i++ {
					lblAddrs = append(lblAddrs, labels+mem.Addr(wsV[i]*4))
				}
				lw := append([]uint32(nil), c.Site("gcon.label.read").AtomicReadVec(lblAddrs, labelScope)...)

				maxAddrs, maxVals = maxAddrs[:0], maxVals[:0]
				for i := 0; i < n; i++ {
					switch {
					case lu[i] > lw[i]:
						maxAddrs = append(maxAddrs, labels+mem.Addr(wsV[i]*4))
						maxVals = append(maxVals, lu[i])
						nChanged++
					case lw[i] > lu[i]:
						maxAddrs = append(maxAddrs, labels+mem.Addr(us[i]*4))
						maxVals = append(maxVals, lw[i])
						nChanged++
					}
				}
				if len(maxAddrs) > 0 {
					c.Site("gcon.label.max").AtomicMaxVec(maxAddrs, maxVals, labelScope)
				}
				c.Work(n / 4)
			}
			c.SyncThreads()
		}

		// Publish the block's change count: per-warp block atomics, then
		// the leader posts the total for the last block to sum.
		c.Site("gcon.blockcount").AtomicAdd(changed+mem.Addr(c.Block*4), nChanged, gpu.ScopeBlock)
		c.SyncThreads()
		if c.Warp != 0 {
			return
		}
		cnt := c.AtomicAdd(changed+mem.Addr(c.Block*4), 0, gpu.ScopeBlock)
		if publishWeak {
			//scord:allow(scopelint/weakmixed) the "weak" injection publishes through a weak store on purpose
			c.Site("gcon.publish").Store(changed+mem.Addr(c.Block*4), cnt)
		} else {
			c.Site("gcon.publish").StoreV(changed+mem.Addr(c.Block*4), cnt)
		}
		c.Fence(publishFence)
		if Arrive(c, arriveCtr) == uint32(c.Blocks) {
			sum := uint32(0)
			for _, v := range c.Site("gcon.publish.sum").LoadVec(c.Seq(changed, c.Blocks), true) {
				sum += v
			}
			c.StoreV(totalChanged, sum)
		}
	}

	rounds := 0
	for ; rounds < g.MaxRounds; rounds++ {
		d.Mem().HostWrite(nextHead, pStart)
		d.Mem().HostFill(changed, g.Blocks, 0)
		d.Mem().HostFill(arriveCtr, 1, 0)
		d.Mem().HostFill(totalChanged, 1, 0)
		if err := d.Launch("gcon.propagate", g.Blocks, g.TPB, propagate); err != nil {
			return err
		}
		if d.Mem().Read(totalChanged) == 0 {
			break
		}
	}

	if len(active) == 0 {
		want := gtgraph.Components(graph)
		got := d.Mem().HostRead(labels, g.V)
		for v := range want {
			if got[v] != uint32(want[v]) {
				return fmt.Errorf("gcon: label[%d] = %d, want %d (after %d rounds)", v, got[v], want[v], rounds)
			}
		}
	}
	return nil
}
