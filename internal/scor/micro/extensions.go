package micro

import (
	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/scor"
)

// NeedsITS reports whether the scenario requires the Independent Thread
// Scheduling detector extension (Section VI).
func (m *Micro) NeedsITS() bool { return m.needITS }

// NeedsAcqRel reports whether the scenario requires the explicit
// acquire/release detector extension (Section VI).
func (m *Micro) NeedsAcqRel() bool { return m.needAcqRel }

// Extensions returns the additional microbenchmarks exercising the two
// Section VI detector extensions. They are not part of the paper's 32
// (Table I) and are kept in a separate list; run them on a device whose
// detector config enables the matching extension.
func Extensions() []*Micro {
	var ms []*Micro
	add := func(m *Micro) { ms = append(ms, m) }

	// --- Independent Thread Scheduling -------------------------------
	add(&Micro{
		name: "its.racey.diverged-lanes", group: "its", racey: true, sameBlock: true,
		needITS: true,
		specs: []scor.RaceSpec{{
			ID: "its.diverged-lanes", Alloc: "m.data",
			Kinds: []core.RaceKind{core.RaceDivergedWarp},
		}},
		kern: func(c *gpu.Ctx, a arena, role int) {
			if role != 0 {
				return
			}
			// A diverged warp: both paths of a branch touch common data.
			c.AtLane(2).Site("m.then").Store(a.data, 1)
			c.AtLane(19).Site("m.else").Store(a.data, 2)
			c.Converge()
		},
	})
	add(&Micro{
		name: "its.ok.diverged-disjoint", group: "its", sameBlock: true,
		needITS: true,
		kern: func(c *gpu.Ctx, a arena, role int) {
			if role != 0 {
				return
			}
			c.AtLane(2).Store(a.data, 1)
			c.AtLane(19).Store(a.data2, 2) // different data: no conflict
			c.Converge()
		},
	})
	add(&Micro{
		name: "its.ok.reconverged", group: "its", sameBlock: true,
		needITS: true,
		kern: func(c *gpu.Ctx, a arena, role int) {
			if role != 0 {
				return
			}
			c.AtLane(2).Store(a.data, 1)
			c.Converge()
			// After reconvergence the warp acts as one thread again.
			c.Store(a.data, 2)
		},
	})

	// --- Explicit acquire/release (PTX 6.0) --------------------------
	add(&Micro{
		name: "acqrel.ok.handshake", group: "acqrel",
		needAcqRel: true,
		kern: func(c *gpu.Ctx, a arena, role int) {
			if role == 0 {
				c.StoreV(a.data, 99)
				c.Release(a.flag, 1, gpu.ScopeDevice)
			} else {
				for c.Acquire(a.flag, gpu.ScopeDevice) != 1 {
					c.Work(25)
				}
				c.LoadV(a.data)
			}
		},
	})
	add(&Micro{
		name: "acqrel.racey.plain-exch-publish", group: "acqrel", racey: true,
		needAcqRel: true,
		specs: []scor.RaceSpec{{
			ID: "acqrel.plain-exch", Alloc: "m.data",
			Kinds: []core.RaceKind{core.RaceMissingDeviceFence},
		}},
		kern: func(c *gpu.Ctx, a arena, role int) {
			if role == 0 {
				c.Site("m.pub").StoreV(a.data, 99)
				c.AtomicExch(a.flag, 1, gpu.ScopeDevice) // no release ordering
			} else {
				//scord:allow(scopelint/acqrel) the injected bug IS the missing Release (plain Exch publish)
				for c.Acquire(a.flag, gpu.ScopeDevice) != 1 {
					c.Work(25)
				}
				c.Site("m.sub").LoadV(a.data)
			}
		},
	})
	add(&Micro{
		name: "acqrel.racey.block-release", group: "acqrel", racey: true,
		needAcqRel: true,
		specs: []scor.RaceSpec{
			{
				ID: "acqrel.block-release", Alloc: "m.data",
				Kinds: []core.RaceKind{core.RaceMissingDeviceFence},
			},
			// The block-scope release also leaves the sync variable
			// SM-local: the consumer's device-scope acquire races with it.
			{
				ID: "acqrel.block-release", Alloc: "m.flag",
				Kinds: []core.RaceKind{core.RaceScopedAtomic},
			},
		},
		kern: func(c *gpu.Ctx, a arena, role int) {
			if role == 0 {
				c.Site("m.pub").StoreV(a.data, 99)
				// Release at block scope: the cross-block consumer is
				// outside the ordering's reach — and never even observes
				// the sync variable flip (it stays in this SM's L1).
				c.Release(a.flag, 1, gpu.ScopeBlock)
			} else {
				// Bounded: the broken release would otherwise spin forever.
				for i := 0; i < 200 && c.Acquire(a.flag, gpu.ScopeDevice) != 1; i++ {
					c.Work(25)
				}
				c.Site("m.sub").LoadV(a.data)
			}
		},
	})

	return ms
}
