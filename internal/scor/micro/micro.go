// Package micro implements the thirty-two microbenchmarks of the ScoR
// suite (Table I of the paper): 6 fence tests (2 racey), 9 atomics tests
// (4 racey), and 17 lock/unlock tests (12 racey). Each uses two warps —
// the paper's "two threads" — placed in the same or different threadblocks
// and is a unit test for one race condition (or for the absence of false
// positives).
package micro

import (
	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/mem"
	"scord/internal/scor"
)

// arena is the standard set of allocations every microbenchmark uses.
type arena struct {
	data, data2, flag, lockA, lockB mem.Addr
}

// Micro is one microbenchmark scenario.
type Micro struct {
	name       string
	group      string // "fence", "atomics", "lock"
	class_     string // race class for Table VIII: "fences", "scoped-fences", "scoped-atomics", "locks"
	racey      bool
	sameBlock  bool
	needITS    bool // Section VI extension scenarios only
	needAcqRel bool
	specs      []scor.RaceSpec
	kern       func(c *gpu.Ctx, a arena, role int)
}

// Name implements scor.Benchmark.
func (m *Micro) Name() string { return m.name }

// Group returns the synchronization category of Table I.
func (m *Micro) Group() string { return m.group }

// Racey reports whether the scenario contains an intentional race.
func (m *Micro) Racey() bool { return m.racey }

// Class returns the Table VIII race class of a racey scenario: "fences",
// "scoped-fences", "scoped-atomics", or "locks" (empty for non-racey
// scenarios).
func (m *Micro) Class() string { return m.class_ }

// Injections implements scor.Benchmark: microbenchmarks are fixed racey or
// non-racey scenarios without switches.
func (m *Micro) Injections() []string { return nil }

// ExpectedRaces implements scor.Benchmark.
func (m *Micro) ExpectedRaces([]string) []scor.RaceSpec { return m.specs }

// Run implements scor.Benchmark.
func (m *Micro) Run(d *gpu.Device, active []string) error {
	a := arena{
		data:  d.Alloc("m.data", 32),
		data2: d.Alloc("m.data2", 32),
		flag:  d.Alloc("m.flag", 8),
		lockA: d.Alloc("m.lockA", 8),
		lockB: d.Alloc("m.lockB", 8),
	}
	blocks, tpb := 2, 32
	if m.sameBlock {
		blocks, tpb = 1, 64
	}
	return d.Launch("micro."+m.name, blocks, tpb, func(c *gpu.Ctx) {
		m.kern(c, a, c.Block*c.Warps+c.Warp)
	})
}

func kinds(k ...core.RaceKind) []core.RaceKind { return k }

// csInc is the canonical critical-section body: a weak read-modify-write
// of m.data.
func csInc(c *gpu.Ctx, a arena) {
	v := c.Site("m.cs.load").Load(a.data)
	c.Work(4)
	c.Site("m.cs.store").Store(a.data, v+1)
}

// producerConsumer builds a sequenced publish scenario: role 0 stores data
// and signals, role 1 waits and reads.
func producerConsumer(produce func(c *gpu.Ctx, a arena), consume func(c *gpu.Ctx, a arena)) func(*gpu.Ctx, arena, int) {
	return func(c *gpu.Ctx, a arena, role int) {
		if role == 0 {
			produce(c, a)
			scor.Signal(c, a.flag)
		} else {
			scor.WaitFlag(c, a.flag, 1)
			consume(c, a)
		}
	}
}

// All returns the 32 microbenchmarks.
func All() []*Micro {
	var ms []*Micro
	add := func(m *Micro) { ms = append(ms, m) }

	dataRace := func(id string, ks ...core.RaceKind) []scor.RaceSpec {
		return []scor.RaceSpec{{ID: id, Alloc: "m.data", Kinds: ks}}
	}
	lockRace := func(id string) []scor.RaceSpec {
		return []scor.RaceSpec{{ID: id, Alloc: "m.lockA", Kinds: kinds(core.RaceScopedAtomic)}}
	}

	// ------------------------------------------------------------------
	// Fence tests: a write to global memory followed by a read by another
	// thread, with or without a __threadfence in between, of varying
	// scopes (Table I).
	// ------------------------------------------------------------------
	add(&Micro{
		name: "fence.racey.cross-none", class_: "fences", group: "fence", racey: true,
		specs: dataRace("fence.cross-none", core.RaceMissingDeviceFence),
		kern: producerConsumer(
			func(c *gpu.Ctx, a arena) { c.Site("m.pub").StoreV(a.data, 42) },
			func(c *gpu.Ctx, a arena) { c.Site("m.sub").LoadV(a.data) },
		),
	})
	add(&Micro{
		name: "fence.racey.cross-block-fence", class_: "scoped-fences", group: "fence", racey: true,
		specs: dataRace("fence.cross-block-fence", core.RaceMissingDeviceFence),
		kern: producerConsumer(
			func(c *gpu.Ctx, a arena) { c.Site("m.pub").StoreV(a.data, 42); c.Fence(gpu.ScopeBlock) },
			func(c *gpu.Ctx, a arena) { c.Site("m.sub").LoadV(a.data) },
		),
	})
	add(&Micro{
		name: "fence.ok.cross-device-fence", group: "fence",
		kern: producerConsumer(
			func(c *gpu.Ctx, a arena) { c.StoreV(a.data, 42); c.Fence(gpu.ScopeDevice) },
			func(c *gpu.Ctx, a arena) { c.LoadV(a.data) },
		),
	})
	add(&Micro{
		name: "fence.ok.same-block-fence", group: "fence", sameBlock: true,
		kern: producerConsumer(
			func(c *gpu.Ctx, a arena) { c.StoreV(a.data, 42); c.Fence(gpu.ScopeBlock) },
			func(c *gpu.Ctx, a arena) { c.LoadV(a.data) },
		),
	})
	add(&Micro{
		name: "fence.ok.same-device-fence", group: "fence", sameBlock: true,
		kern: producerConsumer(
			func(c *gpu.Ctx, a arena) { c.StoreV(a.data, 42); c.Fence(gpu.ScopeDevice) },
			func(c *gpu.Ctx, a arena) { c.LoadV(a.data) },
		),
	})
	add(&Micro{
		name: "fence.ok.same-barrier", group: "fence", sameBlock: true,
		kern: func(c *gpu.Ctx, a arena, role int) {
			if role == 0 {
				c.Store(a.data, 7)
			}
			c.SyncThreads()
			if role == 1 {
				c.Load(a.data)
			}
		},
	})

	// ------------------------------------------------------------------
	// Atomics tests: atomic and non-atomic operations on global memory
	// using varying scopes (Table I).
	// ------------------------------------------------------------------
	add(&Micro{
		name: "atom.racey.block-cross", class_: "scoped-atomics", group: "atomics", racey: true,
		specs: dataRace("atom.block-cross", core.RaceScopedAtomic),
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 8; i++ {
				//scord:allow(scopelint/crossblock) the scenario injects exactly this scoped-atomic race
				c.Site("m.ctr").AtomicAdd(a.data, 1, gpu.ScopeBlock)
				c.Work(10)
			}
		},
	})
	add(&Micro{
		name: "atom.racey.mixed-scope", class_: "scoped-atomics", group: "atomics", racey: true,
		specs: dataRace("atom.mixed-scope", core.RaceScopedAtomic),
		kern: func(c *gpu.Ctx, a arena, role int) {
			s := gpu.ScopeBlock
			if role == 1 {
				s = gpu.ScopeDevice
			}
			for i := 0; i < 8; i++ {
				c.Site("m.ctr").AtomicAdd(a.data, 1, s)
				c.Work(10)
			}
		},
	})
	add(&Micro{
		name: "atom.racey.block-then-load", class_: "scoped-atomics", group: "atomics", racey: true,
		specs: dataRace("atom.block-then-load", core.RaceScopedAtomic),
		kern: producerConsumer(
			//scord:allow(scopelint/crossblock) the scenario injects exactly this scoped-atomic race
			func(c *gpu.Ctx, a arena) { c.Site("m.pub").AtomicExch(a.data, 7, gpu.ScopeBlock) },
			func(c *gpu.Ctx, a arena) { c.Site("m.sub").LoadV(a.data) },
		),
	})
	add(&Micro{
		name: "atom.racey.store-vs-atomic", class_: "fences", group: "atomics", racey: true,
		specs: dataRace("atom.store-vs-atomic", core.RaceMissingDeviceFence),
		kern: producerConsumer(
			func(c *gpu.Ctx, a arena) { c.Site("m.pub").StoreV(a.data, 3) },
			func(c *gpu.Ctx, a arena) { c.Site("m.sub").AtomicAdd(a.data, 1, gpu.ScopeDevice) },
		),
	})
	add(&Micro{
		name: "atom.ok.device-cross", group: "atomics",
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 8; i++ {
				c.AtomicAdd(a.data, 1, gpu.ScopeDevice)
				c.Work(10)
			}
		},
	})
	add(&Micro{
		name: "atom.ok.block-same", group: "atomics", sameBlock: true,
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 8; i++ {
				//scord:allow(scopelint/crossblock) sameBlock scenario: launched on a single block, so block scope covers every warp
				c.AtomicAdd(a.data, 1, gpu.ScopeBlock)
				c.Work(10)
			}
		},
	})
	add(&Micro{
		name: "atom.ok.block-disjoint", group: "atomics",
		kern: func(c *gpu.Ctx, a arena, role int) {
			target := a.data
			if role == 1 {
				target = a.data2
			}
			for i := 0; i < 8; i++ {
				c.AtomicAdd(target, 1, gpu.ScopeBlock)
				c.Work(10)
			}
		},
	})
	add(&Micro{
		name: "atom.ok.exch-then-atomicread", group: "atomics",
		kern: producerConsumer(
			func(c *gpu.Ctx, a arena) { c.AtomicExch(a.data, 5, gpu.ScopeDevice) },
			func(c *gpu.Ctx, a arena) { c.AtomicAdd(a.data, 0, gpu.ScopeDevice) },
		),
	})
	add(&Micro{
		name: "atom.ok.atomic-then-load", group: "atomics",
		kern: producerConsumer(
			func(c *gpu.Ctx, a arena) { c.AtomicExch(a.data, 5, gpu.ScopeDevice); c.Fence(gpu.ScopeDevice) },
			func(c *gpu.Ctx, a arena) { c.LoadV(a.data) },
		),
	})

	// ------------------------------------------------------------------
	// Lock/unlock tests: loads/stores on global memory with or without
	// lock/unlock (acquire/release) of varying scopes; the required
	// __threadfence may also be missing (Table I).
	// ------------------------------------------------------------------
	csKinds := kinds(core.RaceMissingDeviceFence, core.RaceMissingBlockFence,
		core.RaceNotStrong, core.RaceMissingLockLoad, core.RaceMissingLockStore)

	lockedInc := func(c *gpu.Ctx, a arena, l mem.Addr) {
		scor.SpinLock(c, l, gpu.ScopeDevice, gpu.ScopeDevice)
		csInc(c, a)
		scor.Unlock(c, l, gpu.ScopeDevice, gpu.ScopeDevice)
	}

	add(&Micro{
		name: "lock.racey.none-cross", class_: "fences", group: "lock", racey: true,
		specs: dataRace("lock.none-cross", csKinds...),
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 4; i++ {
				csInc(c, a)
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.racey.none-same", class_: "fences", group: "lock", racey: true, sameBlock: true,
		specs: dataRace("lock.none-same", core.RaceMissingBlockFence, core.RaceNotStrong),
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 4; i++ {
				csInc(c, a)
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.racey.store-unlocked", class_: "locks", group: "lock", racey: true,
		specs: dataRace("lock.store-unlocked", core.RaceMissingLockLoad, core.RaceMissingLockStore),
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 4; i++ {
				if role == 0 {
					lockedInc(c, a, a.lockA)
				} else {
					csInc(c, a)
				}
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.racey.load-unlocked", class_: "locks", group: "lock", racey: true,
		specs: dataRace("lock.load-unlocked", core.RaceMissingLockLoad),
		kern: producerConsumer(
			func(c *gpu.Ctx, a arena) { lockedInc(c, a, a.lockA) },
			func(c *gpu.Ctx, a arena) { c.Site("m.reader").LoadV(a.data) },
		),
	})
	add(&Micro{
		name: "lock.racey.different-locks", class_: "locks", group: "lock", racey: true,
		specs: dataRace("lock.different-locks", core.RaceMissingLockLoad, core.RaceMissingLockStore),
		kern: func(c *gpu.Ctx, a arena, role int) {
			l := a.lockA
			if role == 1 {
				l = a.lockB
			}
			for i := 0; i < 4; i++ {
				lockedInc(c, a, l)
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.racey.block-lock-cross", class_: "scoped-atomics", group: "lock", racey: true,
		specs: lockRace("lock.block-lock-cross"),
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 4; i++ {
				scor.SpinLock(c, a.lockA, gpu.ScopeBlock, gpu.ScopeBlock)
				csInc(c, a)
				scor.Unlock(c, a.lockA, gpu.ScopeBlock, gpu.ScopeBlock)
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.racey.cas-block-exch-dev", class_: "scoped-atomics", group: "lock", racey: true,
		specs: lockRace("lock.cas-block-exch-dev"),
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 4; i++ {
				scor.SpinLock(c, a.lockA, gpu.ScopeBlock, gpu.ScopeDevice)
				csInc(c, a)
				scor.Unlock(c, a.lockA, gpu.ScopeDevice, gpu.ScopeDevice)
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.racey.exch-block", class_: "locks", group: "lock", racey: true,
		specs: append(lockRace("lock.exch-block"),
			scor.RaceSpec{ID: "lock.exch-block", Alloc: "m.data", Kinds: csKinds}),
		kern: producerConsumer(
			func(c *gpu.Ctx, a arena) {
				scor.SpinLock(c, a.lockA, gpu.ScopeDevice, gpu.ScopeDevice)
				csInc(c, a)
				// Release with a block-scope Exch: other blocks never see
				// the lock freed.
				scor.Unlock(c, a.lockA, gpu.ScopeDevice, gpu.ScopeBlock)
			},
			func(c *gpu.Ctx, a arena) {
				// Bounded acquire fails (the release was SM-local), and
				// the "programmer" barges into the critical section.
				for i := 0; i < 3; i++ {
					if c.Site("m.lock.try").AtomicCAS(a.lockA, 0, 1, gpu.ScopeDevice) == 0 {
						c.Fence(gpu.ScopeDevice)
						break
					}
					c.Work(20)
				}
				csInc(c, a)
			},
		),
	})
	add(&Micro{
		name: "lock.racey.acq-fence-missing", class_: "locks", group: "lock", racey: true,
		specs: dataRace("lock.acq-fence-missing", core.RaceNotStrong, core.RaceMissingLockLoad, core.RaceMissingLockStore),
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 4; i++ {
				scor.SpinLockNoFence(c, a.lockA, gpu.ScopeDevice)
				csInc(c, a)
				scor.Unlock(c, a.lockA, gpu.ScopeDevice, gpu.ScopeDevice)
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.racey.acq-fence-block", class_: "scoped-fences", group: "lock", racey: true,
		specs: dataRace("lock.acq-fence-block", core.RaceNotStrong, core.RaceMissingLockLoad, core.RaceMissingLockStore),
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 4; i++ {
				scor.SpinLock(c, a.lockA, gpu.ScopeDevice, gpu.ScopeBlock)
				csInc(c, a)
				scor.Unlock(c, a.lockA, gpu.ScopeDevice, gpu.ScopeDevice)
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.racey.one-side-fence-missing", class_: "locks", group: "lock", racey: true,
		specs: dataRace("lock.one-side-fence-missing", core.RaceNotStrong, core.RaceMissingLockLoad, core.RaceMissingLockStore),
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 4; i++ {
				if role == 0 {
					lockedInc(c, a, a.lockA)
				} else {
					scor.SpinLockNoFence(c, a.lockA, gpu.ScopeDevice)
					csInc(c, a)
					scor.Unlock(c, a.lockA, gpu.ScopeDevice, gpu.ScopeDevice)
				}
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.racey.block-lock-outside-reader", class_: "locks", group: "lock", racey: true,
		specs: dataRace("lock.block-lock-outside-reader", core.RaceMissingLockLoad, core.RaceMissingDeviceFence),
		kern: func(c *gpu.Ctx, a arena, role int) {
			if role == 0 {
				for i := 0; i < 4; i++ {
					scor.SpinLock(c, a.lockA, gpu.ScopeBlock, gpu.ScopeBlock)
					csInc(c, a)
					scor.Unlock(c, a.lockA, gpu.ScopeBlock, gpu.ScopeBlock)
					c.Work(15)
				}
				scor.Signal(c, a.flag)
			} else {
				scor.WaitFlag(c, a.flag, 1)
				c.Site("m.reader").LoadV(a.data)
			}
		},
	})

	add(&Micro{
		name: "lock.ok.device-cross", group: "lock",
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 4; i++ {
				lockedInc(c, a, a.lockA)
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.ok.block-same", group: "lock", sameBlock: true,
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 4; i++ {
				scor.SpinLock(c, a.lockA, gpu.ScopeBlock, gpu.ScopeBlock)
				csInc(c, a)
				scor.Unlock(c, a.lockA, gpu.ScopeBlock, gpu.ScopeBlock)
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.ok.nested", group: "lock",
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 3; i++ {
				scor.SpinLock(c, a.lockA, gpu.ScopeDevice, gpu.ScopeDevice)
				scor.SpinLock(c, a.lockB, gpu.ScopeDevice, gpu.ScopeDevice)
				csInc(c, a)
				scor.Unlock(c, a.lockB, gpu.ScopeDevice, gpu.ScopeDevice)
				scor.Unlock(c, a.lockA, gpu.ScopeDevice, gpu.ScopeDevice)
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.ok.disjoint", group: "lock",
		kern: func(c *gpu.Ctx, a arena, role int) {
			l, target := a.lockA, a.data
			if role == 1 {
				l, target = a.lockB, a.data2
			}
			for i := 0; i < 4; i++ {
				scor.SpinLock(c, l, gpu.ScopeDevice, gpu.ScopeDevice)
				v := c.Load(target)
				c.Store(target, v+1)
				scor.Unlock(c, l, gpu.ScopeDevice, gpu.ScopeDevice)
				c.Work(15)
			}
		},
	})
	add(&Micro{
		name: "lock.ok.volatile-data", group: "lock",
		kern: func(c *gpu.Ctx, a arena, role int) {
			for i := 0; i < 4; i++ {
				scor.SpinLock(c, a.lockA, gpu.ScopeDevice, gpu.ScopeDevice)
				v := c.LoadV(a.data)
				c.StoreV(a.data, v+1)
				scor.Unlock(c, a.lockA, gpu.ScopeDevice, gpu.ScopeDevice)
				c.Work(15)
			}
		},
	})

	return ms
}

// Benchmarks adapts the microbenchmarks to the scor.Benchmark interface.
func Benchmarks() []scor.Benchmark {
	ms := All()
	out := make([]scor.Benchmark, len(ms))
	for i, m := range ms {
		out[i] = m
	}
	return out
}
