package scor

import (
	"fmt"

	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/mem"
)

// R110 is the Rule 110 Cellular Automata benchmark of Table II: a ring of
// cells advanced for several iterations. Cells interior to a block are
// exchanged through weak stores ordered by the block barrier; the two
// border cells of every block are published through a separate volatile
// border array with a device-scope fence and a per-block iteration flag,
// because neighbouring blocks consume them ("scope of fence used after
// iteration depends whether the element lies on the border of a block").
//
// Injections:
//   - "fence":  border publication uses a block-scope fence — a scoped
//     fence race on the border arrays.
//   - "atomic": iteration flags advance with block-scope atomics — a
//     scoped atomic race on the flags (and neighbours time out reading
//     stale borders).
type R110 struct {
	N      int
	Blocks int
	TPB    int
	Iters  int
}

// NewR110 returns the benchmark at its default scaled-down size.
func NewR110() *R110 { return &R110{N: 65536, Blocks: 16, TPB: 256, Iters: 6} }

// Name implements Benchmark.
func (r *R110) Name() string { return "R110" }

// Injections implements Benchmark.
func (r *R110) Injections() []string { return []string{"fence", "atomic"} }

// ExpectedRaces implements Benchmark.
func (r *R110) ExpectedRaces(active []string) []RaceSpec {
	var specs []RaceSpec
	if has(active, "fence") {
		specs = append(specs, RaceSpec{
			ID:    "r110.border.block-fence",
			Alloc: "r110.borders",
			Kinds: []core.RaceKind{core.RaceMissingDeviceFence},
		})
	}
	if has(active, "atomic") {
		specs = append(specs, RaceSpec{
			ID:    "r110.iter.block-atomic",
			Alloc: "r110.iter",
			Kinds: []core.RaceKind{core.RaceScopedAtomic},
		})
	}
	return specs
}

func rule110(l, c, r uint32) uint32 {
	return (0b01101110 >> ((l&1)<<2 | (c&1)<<1 | r&1)) & 1
}

// Run implements Benchmark.
func (r *R110) Run(d *gpu.Device, active []string) error {
	validateInjections(r, active)
	ws := d.Config().WarpSize
	warps := r.TPB / ws
	chunk := r.N / r.Blocks
	if r.N%r.Blocks != 0 || chunk%warps != 0 || (chunk/warps)%ws != 0 {
		return fmt.Errorf("r110: N=%d does not tile into %d blocks x %d warps", r.N, r.Blocks, warps)
	}
	perWarp := chunk / warps

	cells := [2]mem.Addr{d.Alloc("r110.cellsA", r.N), d.Alloc("r110.cellsB", r.N)}
	// borders[buf][block][0]=left cell value, [1]=right cell value.
	borders := [2]mem.Addr{d.Alloc("r110.bordersA", 2*r.Blocks), d.Alloc("r110.bordersB", 2*r.Blocks)}
	iterFlags := d.Alloc("r110.iter", r.Blocks)

	rng := newRNG(d, 0x110)
	init := make([]uint32, r.N)
	for i := range init {
		init[i] = uint32(rng.Intn(2))
	}
	d.Mem().HostWrite(cells[0], init)
	initBorders := make([]uint32, 2*r.Blocks)
	for b := 0; b < r.Blocks; b++ {
		initBorders[2*b] = init[b*chunk]
		initBorders[2*b+1] = init[b*chunk+chunk-1]
	}
	d.Mem().HostWrite(borders[0], initBorders)

	fenceScope := gpu.ScopeDevice
	if has(active, "fence") {
		fenceScope = gpu.ScopeBlock
	}
	flagScope := gpu.ScopeDevice
	if has(active, "atomic") {
		flagScope = gpu.ScopeBlock
	}

	err := d.Launch("r110.evolve", r.Blocks, r.TPB, func(c *gpu.Ctx) {
		b0 := c.Block * chunk
		s := b0 + c.Warp*perWarp
		leftNb := (c.Block + r.Blocks - 1) % r.Blocks
		rightNb := (c.Block + 1) % r.Blocks
		out := make([]uint32, perWarp)

		for t := 0; t < r.Iters; t++ {
			cur, nxt := cells[t%2], cells[(t+1)%2]
			bCur, bNxt := borders[t%2], borders[(t+1)%2]

			// Edge warps wait for their neighbour's previous iteration to
			// be published before reading its border cell. Bounded so the
			// "atomic" injection degrades instead of hanging.
			var left, right uint32
			if c.Warp == 0 {
				c.Site("r110.wait.left")
				waitAtLeastBounded(c, iterFlags+mem.Addr(leftNb*4), uint32(t), 400)
				left = c.Site("r110.halo.left").LoadV(bCur + mem.Addr((2*leftNb+1)*4))
			} else {
				left = c.Load(cur + mem.Addr((s-1)*4))
			}
			if c.Warp == c.Warps-1 {
				c.Site("r110.wait.right")
				waitAtLeastBounded(c, iterFlags+mem.Addr(rightNb*4), uint32(t), 400)
				right = c.Site("r110.halo.right").LoadV(bCur + mem.Addr(2*rightNb*4))
			} else {
				right = c.Load(cur + mem.Addr((s+perWarp)*4))
			}

			vals := c.Site("r110.cells.load").LoadVec(c.Seq(cur+mem.Addr(s*4), perWarp), false)
			prev := left
			for i := 0; i < perWarp; i++ {
				nb := right
				if i+1 < perWarp {
					nb = vals[i+1]
				}
				out[i] = rule110(prev, vals[i], nb)
				prev = vals[i]
			}
			c.Work(perWarp / 8)
			c.Site("r110.cells.store").StoreVec(c.Seq(nxt+mem.Addr(s*4), perWarp), out, false)

			// Edge warps publish the block's new border cells with the
			// required device-scope fence.
			if c.Warp == 0 {
				c.Site("r110.border.store").StoreV(bNxt+mem.Addr(2*c.Block*4), out[0])
				c.Fence(fenceScope)
			}
			if c.Warp == c.Warps-1 {
				c.Site("r110.border.store").StoreV(bNxt+mem.Addr((2*c.Block+1)*4), out[perWarp-1])
				c.Fence(fenceScope)
			}
			c.SyncThreads()
			if c.Warp == 0 {
				c.Site("r110.iter.bump").AtomicAdd(iterFlags+mem.Addr(c.Block*4), 1, flagScope)
			}
			c.SyncThreads()
		}
	})
	if err != nil {
		return err
	}

	if len(active) == 0 {
		want := append([]uint32(nil), init...)
		next := make([]uint32, r.N)
		for t := 0; t < r.Iters; t++ {
			for i := 0; i < r.N; i++ {
				next[i] = rule110(want[(i+r.N-1)%r.N], want[i], want[(i+1)%r.N])
			}
			want, next = next, want
		}
		got := d.Mem().HostRead(cells[r.Iters%2], r.N)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("r110: cell %d = %d, want %d after %d iters", i, got[i], want[i], r.Iters)
			}
		}
	}
	return nil
}
