package scor

import (
	"testing"
	"testing/quick"

	"scord/internal/config"
	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/mem"
)

func device(t *testing.T, mode config.DetectorMode) *gpu.Device {
	t.Helper()
	d, err := gpu.New(config.Default().WithDetector(mode))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPartitionsCoverAndSkew: the work-stealing partitions tile the range
// exactly and give block 0 the oversized share that makes stealing
// deterministic.
func TestPartitionsCoverAndSkew(t *testing.T) {
	f := func(totalRaw uint16, blocksRaw uint8) bool {
		total := int(totalRaw)%10000 + 100
		blocks := int(blocksRaw)%30 + 2
		start, end := partitions(total, blocks)
		if start[0] != 0 || int(end[blocks-1]) != total {
			return false
		}
		for b := 0; b < blocks; b++ {
			if end[b] < start[b] {
				return false
			}
			if b > 0 && start[b] != end[b-1] {
				return false
			}
		}
		// Block 0's share is the largest.
		share0 := end[0] - start[0]
		for b := 1; b < blocks-1; b++ {
			if end[b]-start[b] > share0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWorkStealingActuallyHappens: the skewed partitions force steals in
// GCOL's first round — the precondition for the Figure 3 injections to be
// observable.
func TestWorkStealingActuallyHappens(t *testing.T) {
	d := device(t, config.ModeOff)
	g := NewGCOL()
	if err := g.Run(d, nil); err != nil {
		t.Fatal(err)
	}
	al, ok := d.Mem().FindAlloc("gcol.nextHead")
	if !ok {
		t.Fatal("nextHead allocation missing")
	}
	// After the final round, block 0's oversized partition must have been
	// advanced beyond its end (every chunk claim adds Chunk, and stealers
	// claim from it too).
	_, pEnd := partitions(g.V, g.Blocks)
	head0 := d.Mem().Read(al.Base)
	if head0 <= pEnd[0] {
		t.Fatalf("nextHead[0]=%d never overshot pEnd[0]=%d: no stealing pressure", head0, pEnd[0])
	}
}

// TestUTSHostCountMatchesEncoding: host-side counting and the device node
// encoding agree on every subtree (the bug class behind an early failure).
func TestUTSHostCountMatchesEncoding(t *testing.T) {
	u := NewUTS()
	f := func(seed uint32) bool {
		root := seed >> 3
		direct := u.hostCount([]uint32{root})
		// Count again through an encode/decode round trip at every level.
		var rec func(n uint32) int
		rec = func(n uint32) int {
			val, depth := decodeNode(n)
			kids := utsChildren(val, depth, u.MaxDepth, nil)
			total := 1
			for _, k := range kids {
				total += rec(encodeNode(k, depth+1))
			}
			return total
		}
		return rec(encodeNode(root, 0)) == direct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestUTSChildrenBounded: fan-out stays within [0,4] and depth terminates.
func TestUTSChildrenBounded(t *testing.T) {
	f := func(val uint32, depth uint8) bool {
		d := int(depth % 10)
		kids := utsChildren(val>>3, d, 7, nil)
		if d >= 7 {
			return len(kids) == 0
		}
		return len(kids) <= 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAppsDeterministic: identical seeds give identical cycles and race
// reports for a representative injected app.
func TestAppsDeterministic(t *testing.T) {
	run := func() (uint64, int) {
		d := device(t, config.ModeFull4B)
		g := NewGCOL()
		if err := g.Run(d, []string{"own-atomic"}); err != nil {
			t.Fatal(err)
		}
		return d.Stats().Cycles, len(d.Races())
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, r1, c2, r2)
	}
}

// TestRaceSpecMatching covers the spec matcher's prefix semantics.
func TestRaceSpecMatching(t *testing.T) {
	spec := RaceSpec{
		ID:    "x",
		Alloc: "app.data",
		Site:  "app.cs",
		Kinds: []core.RaceKind{core.RaceNotStrong},
	}
	rec := core.Record{Kind: core.RaceNotStrong, Site: "app.cs.store"}
	if !spec.Matches("app.dataA", rec) {
		t.Error("alloc prefix should match")
	}
	if spec.Matches("app.other", rec) {
		t.Error("alloc mismatch accepted")
	}
	rec.Site = "elsewhere"
	if spec.Matches("app.data", rec) {
		t.Error("site mismatch accepted")
	}
	rec.Site = "app.cs"
	rec.Kind = core.RaceScopedAtomic
	if spec.Matches("app.data", rec) {
		t.Error("kind mismatch accepted")
	}
}

// TestMatchRecordsDedupsByID: several specs sharing one ID count as one
// expected race.
func TestMatchRecordsDedupsByID(t *testing.T) {
	d := device(t, config.ModeFull4B)
	m := NewMM()
	if err := m.Run(d, []string{"unlocked"}); err != nil {
		t.Fatal(err)
	}
	specs := m.ExpectedRaces([]string{"unlocked"})
	res := MatchRaces(d, specs)
	if res.Expected != 1 {
		t.Fatalf("expected = %d, want 1 unique ID", res.Expected)
	}
	if len(res.Missed) != 0 {
		t.Fatalf("missed: %v", res.Missed)
	}
}

// TestInjectionsAreDeclared: every app's ExpectedRaces with all injections
// yields at least one spec per injection and matches the paper's per-app
// race counts (Table II / Table VI).
func TestInjectionsAreDeclared(t *testing.T) {
	want := map[string]int{"MM": 4, "RED": 2, "R110": 2, "GCOL": 6, "GCON": 5, "1DC": 1, "UTS": 6}
	total := 0
	for _, b := range Apps() {
		specs := b.ExpectedRaces(b.Injections())
		ids := map[string]bool{}
		for _, s := range specs {
			ids[s.ID] = true
		}
		if got := len(ids); got != want[b.Name()] {
			t.Errorf("%s declares %d unique races, want %d", b.Name(), got, want[b.Name()])
		}
		total += len(ids)
		if len(b.Injections()) != want[b.Name()] {
			t.Errorf("%s has %d injections, want %d", b.Name(), len(b.Injections()), want[b.Name()])
		}
	}
	if total != 26 {
		t.Errorf("apps declare %d unique races, want 26 (44 minus 18 micro)", total)
	}
}

// TestUnknownInjectionPanics: the harness contract.
func TestUnknownInjectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown injection accepted")
		}
	}()
	d := device(t, config.ModeOff)
	_ = NewRED().Run(d, []string{"no-such-switch"})
}

// TestSpinLockMutualExclusion: the helper really excludes under device
// scope — two blocks hammering one counter never lose an update.
func TestSpinLockMutualExclusion(t *testing.T) {
	d := device(t, config.ModeOff)
	lock := d.Alloc("l", 1)
	ctr := d.Alloc("c", 1)
	const per = 20
	err := d.Launch("mutex", 4, 32, func(c *gpu.Ctx) {
		for i := 0; i < per; i++ {
			SpinLock(c, lock, gpu.ScopeDevice, gpu.ScopeDevice)
			v := c.Load(ctr)
			c.Work(7)
			c.Store(ctr, v+1)
			Unlock(c, lock, gpu.ScopeDevice, gpu.ScopeDevice)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Mem().Read(ctr); got != 4*per {
		t.Fatalf("counter = %d, want %d (mutual exclusion broken)", got, 4*per)
	}
}

// TestBlockScopeLockIsNotGlobal: the same program with block-scope locks
// loses updates across SMs — the Figure 5 failure mode.
func TestBlockScopeLockIsNotGlobal(t *testing.T) {
	d := device(t, config.ModeOff)
	lock := d.Alloc("l", 1)
	ctr := d.Alloc("c", 1)
	const per = 20
	err := d.Launch("broken", 4, 32, func(c *gpu.Ctx) {
		for i := 0; i < per; i++ {
			SpinLock(c, lock, gpu.ScopeBlock, gpu.ScopeBlock)
			v := c.Load(ctr)
			c.Work(7)
			c.Store(ctr, v+1)
			Unlock(c, lock, gpu.ScopeBlock, gpu.ScopeBlock)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Mem().Read(ctr); got == 4*per {
		t.Fatal("block-scope lock behaved like a global lock")
	}
}

// TestWaitFlagBounded: gives up after the budget instead of hanging.
func TestWaitFlagBounded(t *testing.T) {
	d := device(t, config.ModeOff)
	flag := d.Alloc("f", 1)
	reached := d.Alloc("r", 1)
	err := d.Launch("bounded", 1, 32, func(c *gpu.Ctx) {
		ok := waitAtLeastBounded(c, flag, 5, 10) // nobody ever sets it
		if !ok {
			c.StoreV(reached, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Mem().Read(reached) != 1 {
		t.Fatal("bounded wait did not give up")
	}
}

// TestAddrHelper: allocation layout assumptions used by race specs.
func TestAddrHelper(t *testing.T) {
	d := device(t, config.ModeOff)
	a := d.Alloc("first", 3)
	b := d.Alloc("second", 3)
	if a == b || b-a < 12 {
		t.Fatalf("allocations overlap: %#x %#x", a, b)
	}
	if al, ok := d.Mem().Locate(b + mem.Addr(4)); !ok || al.Name != "second" {
		t.Fatal("Locate broken")
	}
}
