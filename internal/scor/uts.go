package scor

import (
	"fmt"

	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/mem"
)

// UTS is the Unbalanced Tree Search benchmark of Table II (Figure 5 of the
// paper): trees are expanded from roots kept on per-block stacks, with the
// number of children of a node decided by a hash function. Each block owns
// a local stack protected by a block-scope lock and a global stack
// protected by a device-scope lock; warps prefer their local stack and
// steal from any global stack when idle. Termination uses a device-scope
// pending-node counter.
//
// Injections (6):
//   - "glock-cas-block":   global-lock CAS uses block scope
//   - "glock-exch-block":  global-lock release Exch uses block scope
//   - "gacq-fence-missing": global-lock acquire omits its fence
//   - "gacq-fence-block":  global-lock acquire fence is block-scope
//   - "steal-unlocked":    stealing pops skip the global lock entirely
//   - "counter-block":     the pending counter uses block-scope atomics
type UTS struct {
	Blocks   int
	TPB      int
	Roots    int
	MaxDepth int
	CapL     int // local stack capacity (nodes per block)
	CapG     int // global stack capacity (nodes per block)
	Patience int // idle loop iterations before a warp gives up
}

// NewUTS returns the benchmark at its default scaled-down size.
func NewUTS() *UTS {
	return &UTS{Blocks: 16, TPB: 64, Roots: 48, MaxDepth: 7, CapL: 2048, CapG: 512, Patience: 300}
}

// Name implements Benchmark.
func (u *UTS) Name() string { return "UTS" }

// Injections implements Benchmark.
func (u *UTS) Injections() []string {
	return []string{"glock-cas-block", "glock-exch-block", "gacq-fence-missing",
		"gacq-fence-block", "steal-unlocked", "counter-block"}
}

// ExpectedRaces implements Benchmark.
func (u *UTS) ExpectedRaces(active []string) []RaceSpec {
	lockKinds := []core.RaceKind{core.RaceScopedAtomic}
	csKinds := []core.RaceKind{core.RaceNotStrong, core.RaceMissingDeviceFence,
		core.RaceMissingBlockFence, core.RaceMissingLockLoad, core.RaceMissingLockStore}
	var specs []RaceSpec
	addCS := func(id string) {
		specs = append(specs,
			RaceSpec{ID: id, Alloc: "uts.gtop", Kinds: csKinds},
			RaceSpec{ID: id, Alloc: "uts.gitems", Kinds: csKinds})
	}
	if has(active, "glock-cas-block") {
		specs = append(specs, RaceSpec{ID: "uts.glock.cas-block", Alloc: "uts.glock", Kinds: lockKinds})
	}
	if has(active, "glock-exch-block") {
		specs = append(specs, RaceSpec{ID: "uts.glock.exch-block", Alloc: "uts.glock", Kinds: lockKinds})
	}
	if has(active, "gacq-fence-missing") {
		addCS("uts.gacq.fence-missing")
	}
	if has(active, "gacq-fence-block") {
		addCS("uts.gacq.fence-block")
	}
	if has(active, "steal-unlocked") {
		addCS("uts.steal.unlocked")
	}
	if has(active, "counter-block") {
		specs = append(specs, RaceSpec{ID: "uts.pending.block-atomic", Alloc: "uts.pending", Kinds: lockKinds})
	}
	return specs
}

// utsMix is the node hash shared by host and device code.
func utsMix(v uint32) uint32 {
	v ^= v >> 16
	v *= 0x7feb352d
	v ^= v >> 15
	v *= 0x846ca68b
	v ^= v >> 16
	return v
}

// utsChildren returns the child values of a node (the hash decides the
// fan-out, 0..4 averaging 2).
func utsChildren(val uint32, depth, maxDepth int, out []uint32) []uint32 {
	out = out[:0]
	if depth >= maxDepth {
		return out
	}
	n := int(utsMix(val) % 5)
	for k := 0; k < n; k++ {
		// Mask to 29 bits so values survive the node encoding's depth
		// field on both host and device.
		out = append(out, utsMix(val*31+uint32(k)+1)>>3)
	}
	return out
}

// hostCount expands the forest on the host, returning the total node count
// (the expected number of device expansions).
func (u *UTS) hostCount(roots []uint32) int {
	type node struct {
		val   uint32
		depth int
	}
	var stack []node
	for _, r := range roots {
		stack = append(stack, node{r, 0})
	}
	total := 0
	var kids []uint32
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		total++
		kids = utsChildren(n.val, n.depth, u.MaxDepth, kids)
		for _, k := range kids {
			stack = append(stack, node{k, n.depth + 1})
		}
	}
	return total
}

func encodeNode(val uint32, depth int) uint32 { return val<<3 | uint32(depth)&7 }
func decodeNode(n uint32) (val uint32, depth int) {
	return n >> 3, int(n & 7)
}

// Run implements Benchmark.
func (u *UTS) Run(d *gpu.Device, active []string) error {
	validateInjections(u, active)

	llock := d.Alloc("uts.llock", u.Blocks)
	ltop := d.Alloc("uts.ltop", u.Blocks)
	litems := d.Alloc("uts.litems", u.Blocks*u.CapL)
	glock := d.Alloc("uts.glock", u.Blocks)
	gtop := d.Alloc("uts.gtop", u.Blocks)
	gitems := d.Alloc("uts.gitems", u.Blocks*u.CapG)
	pending := d.Alloc("uts.pending", 1)
	processed := d.Alloc("uts.processed", 1)

	rng := newRNG(d, 0x075)
	roots := make([]uint32, u.Roots)
	for i := range roots {
		roots[i] = rng.Uint32() >> 3 // leave room for the depth bits
	}
	wantTotal := u.hostCount(roots)

	// Distribute roots over the blocks' global stacks.
	tops := make([]uint32, u.Blocks)
	for i, r := range roots {
		b := i % u.Blocks
		d.Mem().Write(gitems+mem.Addr((b*u.CapG+int(tops[b]))*4), encodeNode(r, 0))
		tops[b]++
	}
	d.Mem().HostWrite(gtop, tops)
	d.Mem().HostFill(pending, 1, uint32(u.Roots))

	casScope := gpu.ScopeDevice
	if has(active, "glock-cas-block") {
		casScope = gpu.ScopeBlock
	}
	exchScope := gpu.ScopeDevice
	if has(active, "glock-exch-block") {
		exchScope = gpu.ScopeBlock
	}
	acqFence := gpu.ScopeDevice
	if has(active, "gacq-fence-block") {
		acqFence = gpu.ScopeBlock
	}
	acqFenceMissing := has(active, "gacq-fence-missing")
	stealUnlocked := has(active, "steal-unlocked")
	pendScope := gpu.ScopeDevice
	if has(active, "counter-block") {
		pendScope = gpu.ScopeBlock
	}

	err := d.Launch("uts.search", u.Blocks, u.TPB, func(c *gpu.Ctx) {
		b := c.Block
		myLLock := llock + mem.Addr(b*4)
		myLTop := ltop + mem.Addr(b*4)

		// tryGlobalLock acquires glock[v] with bounded attempts and the
		// (possibly injected) acquire pattern.
		tryGlobalLock := func(v, attempts int) bool {
			a := glock + mem.Addr(v*4)
			for i := 0; i < attempts; i++ {
				if c.Site("uts.glock.acquire").AtomicCAS(a, 0, 1, casScope) == 0 {
					if !acqFenceMissing {
						c.Fence(acqFence)
					}
					return true
				}
				c.Work(30)
			}
			return false
		}
		globalUnlock := func(v int) {
			c.Site("uts.glock.release")
			Unlock(c, glock+mem.Addr(v*4), gpu.ScopeDevice, exchScope)
		}

		popLocal := func() (uint32, bool) {
			c.Site("uts.llock.acquire")
			SpinLock(c, myLLock, gpu.ScopeBlock, gpu.ScopeBlock)
			var node uint32
			ok := false
			top := c.Site("uts.lcs.top").Load(myLTop)
			if top > 0 {
				node = c.Site("uts.lcs.item").Load(litems + mem.Addr((b*u.CapL+int(top)-1)*4))
				c.Site("uts.lcs.top").Store(myLTop, top-1)
				ok = true
			}
			c.Site("uts.llock.release")
			Unlock(c, myLLock, gpu.ScopeBlock, gpu.ScopeBlock)
			return node, ok
		}
		pushLocal := func(n uint32) bool {
			c.Site("uts.llock.acquire")
			SpinLock(c, myLLock, gpu.ScopeBlock, gpu.ScopeBlock)
			ok := false
			top := c.Site("uts.lcs.top").Load(myLTop)
			if int(top) < u.CapL {
				c.Site("uts.lcs.item").Store(litems+mem.Addr((b*u.CapL+int(top))*4), n)
				c.Site("uts.lcs.top").Store(myLTop, top+1)
				ok = true
			}
			c.Site("uts.llock.release")
			Unlock(c, myLLock, gpu.ScopeBlock, gpu.ScopeBlock)
			return ok
		}
		popGlobal := func(v int) (uint32, bool) {
			if stealUnlocked && v != b && v%2 == 1 {
				// Injected bug: steals from odd-numbered victims skip the
				// lock (even victims stay locked, so the suite's other
				// lock injections still see cross-block lock traffic).
				top := c.Site("uts.gcs.top").Load(gtop + mem.Addr(v*4))
				if top == 0 {
					return 0, false
				}
				node := c.Site("uts.gcs.item").Load(gitems + mem.Addr((v*u.CapG+int(top)-1)*4))
				c.Site("uts.gcs.top").Store(gtop+mem.Addr(v*4), top-1)
				return node, true
			}
			if !tryGlobalLock(v, 3) {
				return 0, false
			}
			var node uint32
			ok := false
			top := c.Site("uts.gcs.top").Load(gtop + mem.Addr(v*4))
			if top > 0 {
				node = c.Site("uts.gcs.item").Load(gitems + mem.Addr((v*u.CapG+int(top)-1)*4))
				c.Site("uts.gcs.top").Store(gtop+mem.Addr(v*4), top-1)
				ok = true
			}
			globalUnlock(v)
			return node, ok
		}
		pushGlobal := func(n uint32) bool {
			if !tryGlobalLock(b, 4) {
				return false
			}
			ok := false
			top := c.Site("uts.gcs.top").Load(gtop + mem.Addr(b*4))
			if int(top) < u.CapG {
				c.Site("uts.gcs.item").Store(gitems+mem.Addr((b*u.CapG+int(top))*4), n)
				c.Site("uts.gcs.top").Store(gtop+mem.Addr(b*4), top+1)
				ok = true
			}
			globalUnlock(b)
			return ok
		}

		var kids []uint32
		idle := 0
		for idle < u.Patience {
			if c.Site("uts.pending.read").AtomicAdd(pending, 0, pendScope) == 0 {
				return
			}
			node, ok := popLocal()
			if !ok {
				for i := 0; i < c.Blocks && !ok; i++ {
					node, ok = popGlobal((b + i) % c.Blocks)
				}
			}
			if !ok {
				idle++
				c.Work(40)
				continue
			}
			idle = 0
			val, depth := decodeNode(node)
			kids = utsChildren(val, depth, u.MaxDepth, kids)
			c.Work(8 + 4*len(kids))
			pushed := uint32(0)
			for k, kv := range kids {
				n := encodeNode(kv, depth+1)
				ok := false
				if k%4 == 3 {
					ok = pushGlobal(n)
				}
				if !ok {
					ok = pushLocal(n)
				}
				if !ok {
					ok = pushGlobal(n)
				}
				if ok {
					pushed++
				}
			}
			c.Site("uts.processed").AtomicAdd(processed, 1, gpu.ScopeDevice)
			// Children first, then retire the popped node, so the counter
			// never transiently hides in-flight work.
			if pushed > 0 {
				c.Site("uts.pending.add").AtomicAdd(pending, pushed, pendScope)
			}
			c.Site("uts.pending.sub").AtomicAdd(pending, ^uint32(0), pendScope)
		}
	})
	if err != nil {
		return err
	}

	if len(active) == 0 {
		if got := d.Mem().Read(processed); got != uint32(wantTotal) {
			return fmt.Errorf("uts: processed %d nodes, want %d", got, wantTotal)
		}
		if p := d.Mem().Read(pending); p != 0 {
			return fmt.Errorf("uts: %d nodes still pending", p)
		}
	}
	return nil
}
