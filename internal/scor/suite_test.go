package scor_test

import (
	"testing"

	"scord/internal/config"
	"scord/internal/gpu"
	"scord/internal/scor"
	"scord/internal/scor/micro"
)

func runBench(t *testing.T, b scor.Benchmark, mode config.DetectorMode, active []string) (*gpu.Device, scor.MatchResult) {
	t.Helper()
	cfg := config.Default().WithDetector(mode)
	d, err := gpu.New(cfg)
	if err != nil {
		t.Fatalf("gpu.New: %v", err)
	}
	if err := b.Run(d, active); err != nil {
		t.Fatalf("%s run (injections %v): %v", b.Name(), active, err)
	}
	return d, scor.MatchRaces(d, b.ExpectedRaces(active))
}

// TestAppsCorrectAndClean: with no injections, every application verifies
// its output and the base detector reports zero races (no false
// positives) — the precondition for Table VII's ScoRD row.
func TestAppsCorrectAndClean(t *testing.T) {
	for _, b := range scor.Apps() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			d, res := runBench(t, b, config.ModeFull4B, nil)
			for _, r := range res.FalsePos {
				t.Errorf("false positive: %s", d.DescribeRecord(r))
			}
		})
	}
}

// TestAppsAllInjectionsCaught: with every injection active, the base
// detector catches each expected unique race (Table VI's base-design
// column) with no false positives.
func TestAppsAllInjectionsCaught(t *testing.T) {
	for _, b := range scor.Apps() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			d, res := runBench(t, b, config.ModeFull4B, b.Injections())
			if len(res.Missed) > 0 {
				t.Errorf("missed races: %v (caught %v, %d records)", res.Missed, res.Caught, res.AllRecords)
				for i, r := range d.Races() {
					if i > 14 {
						break
					}
					t.Logf("record: %s", d.DescribeRecord(r))
				}
			}
			for _, r := range res.FalsePos {
				t.Errorf("false positive: %s", d.DescribeRecord(r))
			}
		})
	}
}

// TestAppsSingleInjection: each injection individually produces exactly
// its own expected race and nothing unexpected.
func TestAppsSingleInjection(t *testing.T) {
	for _, b := range scor.Apps() {
		for _, inj := range b.Injections() {
			b, inj := b, inj
			t.Run(b.Name()+"/"+inj, func(t *testing.T) {
				d, res := runBench(t, b, config.ModeFull4B, []string{inj})
				if len(res.Missed) > 0 {
					t.Errorf("missed: %v (%d records)", res.Missed, res.AllRecords)
					for i, r := range d.Races() {
						if i > 14 {
							break
						}
						t.Logf("record: %s", d.DescribeRecord(r))
					}
				}
				for _, r := range res.FalsePos {
					t.Errorf("false positive: %s", d.DescribeRecord(r))
				}
			})
		}
	}
}

// TestMicrobenchmarksCached: ScoRD's software-cached metadata detects the
// same 18 races with the same zero false positives on the microbenchmarks
// (their footprints are tiny, so no aliasing occurs).
func TestMicrobenchmarksCached(t *testing.T) {
	for _, m := range micro.All() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			d, res := runBench(t, m, config.ModeCached, nil)
			if len(res.Missed) > 0 {
				t.Errorf("missed: %v", res.Missed)
			}
			for _, r := range res.FalsePos {
				t.Errorf("false positive: %s", d.DescribeRecord(r))
			}
		})
	}
}

// TestMicrobenchmarks: each of the 32 microbenchmarks behaves as labelled
// under the base detector: racey ones report exactly their race, non-racey
// ones report nothing.
func TestMicrobenchmarks(t *testing.T) {
	ms := micro.All()
	if len(ms) != 32 {
		t.Fatalf("suite has %d microbenchmarks, want 32", len(ms))
	}
	racey := 0
	groups := map[string]int{}
	for _, m := range ms {
		if m.Racey() {
			racey++
		}
		groups[m.Group()]++
	}
	if racey != 18 {
		t.Errorf("suite has %d racey microbenchmarks, want 18 (Table I)", racey)
	}
	if groups["fence"] != 6 || groups["atomics"] != 9 || groups["lock"] != 17 {
		t.Errorf("group sizes %v, want fence=6 atomics=9 lock=17", groups)
	}

	for _, m := range ms {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			d, res := runBench(t, m, config.ModeFull4B, nil)
			if len(res.Missed) > 0 {
				t.Errorf("missed: %v (%d records)", res.Missed, res.AllRecords)
				for _, r := range d.Races() {
					t.Logf("record: %s", d.DescribeRecord(r))
				}
			}
			for _, r := range res.FalsePos {
				t.Errorf("false positive: %s", d.DescribeRecord(r))
			}
		})
	}
}
