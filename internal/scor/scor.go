// Package scor implements the ScoR benchmark suite of the paper (Section
// III-B): seven applications and, in the micro subpackage, thirty-two
// microbenchmarks, all exercising scoped synchronization. Every benchmark
// is correctly synchronized by default and exposes named race injections
// that introduce the scoped and non-scoped races of Table II.
package scor

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/mem"
)

// splitmix64 is the SplitMix64 finalizer (Steele et al.), a bijective
// avalanche mix on 64-bit words.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mixSeed derives an RNG seed from the device seed and a per-benchmark
// salt. An earlier version mixed linearly (Seed*K + salt), which made
// distinct (seed, salt) pairs collide whenever seed deltas cancel salt
// deltas (e.g. seed 1 / salt K against seed 2 / salt 0); feeding each
// input through splitmix64 avalanches every bit instead.
func mixSeed(seed, salt int64) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) ^ uint64(salt)))
}

// newRNG derives a benchmark-local deterministic RNG from the device seed.
func newRNG(d *gpu.Device, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(mixSeed(d.Config().Seed, salt)))
}

// RaceSpec declares one unique race a benchmark configuration is expected
// to produce: the allocation it lands on, the acceptable detector verdicts,
// and optionally a source-site prefix that records must carry.
type RaceSpec struct {
	ID    string // stable identifier, e.g. "gcol.steal.block-atomic"
	Alloc string // allocation-name prefix the racing address belongs to
	Kinds []core.RaceKind
	Site  string // site prefix; empty accepts any site
}

// Matches reports whether a detector record satisfies this spec.
func (s RaceSpec) Matches(allocName string, r core.Record) bool {
	if !strings.HasPrefix(allocName, s.Alloc) {
		return false
	}
	if s.Site != "" && !strings.HasPrefix(r.Site, s.Site) {
		return false
	}
	for _, k := range s.Kinds {
		if r.Kind == k {
			return true
		}
	}
	return false
}

// Benchmark is one member of the suite.
type Benchmark interface {
	// Name returns the short name used in the paper's tables (MM, RED, ...).
	Name() string
	// Injections lists the benchmark's race-injection switches.
	Injections() []string
	// ExpectedRaces returns the unique races the given injection set must
	// produce (empty set => correctly synchronized, zero races expected).
	ExpectedRaces(active []string) []RaceSpec
	// Run sets up device memory, launches the kernels and, when no
	// injections are active, verifies the functional output.
	Run(d *gpu.Device, active []string) error
}

// has reports whether an injection switch is active.
func has(active []string, name string) bool {
	for _, a := range active {
		if a == name {
			return true
		}
	}
	return false
}

// validate panics on unknown injection names — a harness bug, not a
// simulation outcome.
func validateInjections(b Benchmark, active []string) {
	known := b.Injections()
	for _, a := range active {
		found := false
		for _, k := range known {
			if a == k {
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("scor: benchmark %s has no injection %q (known: %v)", b.Name(), a, known))
		}
	}
}

// --- kernel-side synchronization helpers -----------------------------------

// spinBound is the CAS-attempt budget of the lock helpers. Correctly
// synchronized benchmarks never approach it; with an injected wrong-scope
// release, a lock can appear held forever to other SMs, and the helper
// then barges into the critical section instead of hanging the simulation
// (the race manifests as broken mutual exclusion either way).
const spinBound = 3000

// SpinLock acquires a lock variable with the CUDA acquire pattern: a CAS
// loop at casScope followed by a fence at fenceScope. The correct pattern
// uses equal scopes; injections pass narrower ones.
func SpinLock(c *gpu.Ctx, l mem.Addr, casScope, fenceScope gpu.Scope) {
	SpinLockNoFence(c, l, casScope)
	c.Fence(fenceScope)
}

// SpinLockNoFence acquires without the trailing fence (the missing-fence
// injection).
func SpinLockNoFence(c *gpu.Ctx, l mem.Addr, casScope gpu.Scope) {
	for i := 0; i < spinBound; i++ {
		if c.AtomicCAS(l, 0, 1, casScope) == 0 {
			return
		}
		c.Work(20)
	}
}

// Unlock releases with the CUDA release pattern: a fence at fenceScope
// followed by an Exch at exchScope.
func Unlock(c *gpu.Ctx, l mem.Addr, fenceScope, exchScope gpu.Scope) {
	c.Fence(fenceScope)
	c.AtomicExch(l, 0, exchScope)
}

// UnlockNoFence releases without the leading fence.
func UnlockNoFence(c *gpu.Ctx, l mem.Addr, exchScope gpu.Scope) {
	c.AtomicExch(l, 0, exchScope)
}

// Signal sets a device-scope flag.
func Signal(c *gpu.Ctx, f mem.Addr) { c.AtomicExch(f, 1, gpu.ScopeDevice) }

// WaitFlag spins until the flag reads v, using atomic reads (the
// atomicAdd-of-zero idiom) so the spin itself is race-free.
func WaitFlag(c *gpu.Ctx, f mem.Addr, v uint32) {
	for c.AtomicAdd(f, 0, gpu.ScopeDevice) != v {
		c.Work(25)
	}
}

// Arrive increments a device-scope arrival counter and returns the new
// count — the standard last-block-detection idiom.
func Arrive(c *gpu.Ctx, ctr mem.Addr) uint32 {
	return c.AtomicAdd(ctr, 1, gpu.ScopeDevice) + 1
}

// waitAtLeastBounded spins (with atomic reads) until the flag reaches at
// least v, giving up after the spin budget so injected scoped-atomic races
// degrade results instead of hanging the simulation. It reports whether
// the condition was met.
func waitAtLeastBounded(c *gpu.Ctx, f mem.Addr, v uint32, spins int) bool {
	for i := 0; i < spins; i++ {
		if c.AtomicAdd(f, 0, gpu.ScopeDevice) >= v {
			return true
		}
		c.Work(25)
	}
	return false
}

// --- result matching ---------------------------------------------------------

// MatchResult summarizes detector records against a benchmark's expected
// races.
type MatchResult struct {
	Expected   int      // unique races the configuration should produce
	Caught     []string // spec IDs matched by at least one record
	Missed     []string // spec IDs with no matching record (false negatives)
	FalsePos   []core.Record
	AllRecords int
}

// MatchRaces compares detector records against the expected specs,
// resolving record addresses to allocation names via the device's memory
// map. Several specs may share one ID (a primary race plus its cascades);
// the ID counts as one expected race, caught when any of its specs match.
func MatchRaces(d *gpu.Device, specs []RaceSpec) MatchResult {
	return MatchRecords(d.Mem(), d.Races(), specs)
}

// MatchRecords is MatchRaces over an explicit record list (e.g. from one
// of the Table VIII comparison models).
func MatchRecords(m *mem.Memory, recs []core.Record, specs []RaceSpec) MatchResult {
	var res MatchResult
	ids := make(map[string]bool)
	for _, s := range specs {
		ids[s.ID] = false
	}
	res.Expected = len(ids)
	res.AllRecords = len(recs)
	for _, r := range recs {
		al, ok := m.Locate(mem.Addr(r.Addr))
		name := ""
		if ok {
			name = al.Name
		}
		matched := false
		for _, s := range specs {
			if s.Matches(name, r) {
				ids[s.ID] = true
				matched = true
			}
		}
		if !matched {
			res.FalsePos = append(res.FalsePos, r)
		}
	}
	for id, hit := range ids {
		if hit {
			res.Caught = append(res.Caught, id)
		} else {
			res.Missed = append(res.Missed, id)
		}
	}
	sort.Strings(res.Caught)
	sort.Strings(res.Missed)
	return res
}

// Apps returns the seven applications of Table II in paper order.
func Apps() []Benchmark {
	return []Benchmark{
		NewMM(), NewRED(), NewR110(), NewGCOL(), NewGCON(), NewConv1D(), NewUTS(),
	}
}
