package scor

import (
	"fmt"

	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/mem"
)

// MM is the Matrix Multiplication benchmark of Table II: C = A x B with a
// split-K decomposition, so several blocks accumulate partial products into
// the same C rows under per-row device-scope locks built from the
// atomicCAS + fence acquire pattern and the fence + atomicExch release
// pattern (Figure 5's locking idiom).
//
// Injections:
//   - "lock-scope":    the whole lock uses block scope — a scoped lock race
//     (detected as a scoped-atomic race on the lock variable).
//   - "acquire-fence": the acquire's fence is omitted — critical-section
//     accesses race (weak accesses, so the fence path flags them).
//   - "fence-scope":   the acquire's fence is block-scope on a device lock —
//     the lock never activates, a missing-common-lock race.
//   - "unlocked":      one block skips locking entirely.
type MM struct {
	M, K, N   int
	RowGroups int // blocks along M
	KSlices   int // blocks along K (these contend per C row)
	TPB       int
}

// NewMM returns the benchmark at its default scaled-down size.
func NewMM() *MM { return &MM{M: 64, K: 48, N: 32, RowGroups: 8, KSlices: 4, TPB: 128} }

// Name implements Benchmark.
func (m *MM) Name() string { return "MM" }

// Injections implements Benchmark.
func (m *MM) Injections() []string {
	return []string{"lock-scope", "acquire-fence", "fence-scope", "unlocked"}
}

// ExpectedRaces implements Benchmark.
func (m *MM) ExpectedRaces(active []string) []RaceSpec {
	var specs []RaceSpec
	if has(active, "lock-scope") {
		specs = append(specs, RaceSpec{
			ID:    "mm.lock.block-scope",
			Alloc: "mm.locks",
			Kinds: []core.RaceKind{core.RaceScopedAtomic},
		})
	}
	if has(active, "acquire-fence") {
		specs = append(specs, RaceSpec{
			ID:    "mm.cs.acquire-fence-missing",
			Alloc: "mm.C",
			Kinds: []core.RaceKind{core.RaceNotStrong, core.RaceMissingDeviceFence, core.RaceMissingLockLoad, core.RaceMissingLockStore},
		})
	}
	if has(active, "fence-scope") {
		specs = append(specs, RaceSpec{
			ID:    "mm.cs.acquire-fence-block",
			Alloc: "mm.C",
			Kinds: []core.RaceKind{core.RaceNotStrong, core.RaceMissingDeviceFence, core.RaceMissingLockLoad, core.RaceMissingLockStore},
		})
	}
	if has(active, "unlocked") {
		specs = append(specs, RaceSpec{
			ID:    "mm.cs.unlocked-block",
			Alloc: "mm.C",
			Kinds: []core.RaceKind{core.RaceMissingLockLoad, core.RaceMissingLockStore, core.RaceNotStrong, core.RaceMissingDeviceFence},
		})
	}
	return specs
}

// Run implements Benchmark.
func (m *MM) Run(d *gpu.Device, active []string) error {
	validateInjections(m, active)
	if m.M%m.RowGroups != 0 || m.K%m.KSlices != 0 {
		return fmt.Errorf("mm: geometry %dx%d not divisible by %dx%d blocks", m.M, m.K, m.RowGroups, m.KSlices)
	}
	warps := m.TPB / d.Config().WarpSize
	rowsPerBlock := m.M / m.RowGroups
	if rowsPerBlock%warps != 0 {
		return fmt.Errorf("mm: %d rows/block not divisible by %d warps", rowsPerBlock, warps)
	}

	a := d.Alloc("mm.A", m.M*m.K)
	b := d.Alloc("mm.B", m.K*m.N)
	cOut := d.Alloc("mm.C", m.M*m.N)
	locks := d.Alloc("mm.locks", m.M)

	rng := newRNG(d, 0x33)
	av := make([]uint32, m.M*m.K)
	bv := make([]uint32, m.K*m.N)
	for i := range av {
		av[i] = uint32(rng.Intn(64))
	}
	for i := range bv {
		bv[i] = uint32(rng.Intn(64))
	}
	d.Mem().HostWrite(a, av)
	d.Mem().HostWrite(b, bv)

	casScope, fenceScope := gpu.ScopeDevice, gpu.ScopeDevice
	acquireFence := true
	switch {
	case has(active, "lock-scope"):
		casScope, fenceScope = gpu.ScopeBlock, gpu.ScopeBlock
	case has(active, "fence-scope"):
		fenceScope = gpu.ScopeBlock
	}
	if has(active, "acquire-fence") {
		acquireFence = false
	}
	unlocked := has(active, "unlocked")

	kslice := m.K / m.KSlices
	rowsPerWarp := rowsPerBlock / warps

	err := d.Launch("mm.multiply", m.RowGroups*m.KSlices, m.TPB, func(c *gpu.Ctx) {
		rowGroup := c.Block / m.KSlices
		ks := c.Block % m.KSlices
		k0 := ks * kslice
		// The "unlocked" injection makes exactly block 0 skip locking; it
		// contends with the other K-slice blocks of row group 0.
		skipLock := unlocked && c.Block == 0
		partial := make([]uint32, m.N)

		for wr := 0; wr < rowsPerWarp; wr++ {
			row := rowGroup*rowsPerBlock + c.Warp*rowsPerWarp + wr
			// Partial dot products over this block's K slice (read-only
			// inputs, weak coalesced loads).
			arow := c.LoadVec(c.Seq(a+mem.Addr((row*m.K+k0)*4), kslice), false)
			arow = append([]uint32(nil), arow...)
			for j := range partial {
				partial[j] = 0
			}
			for kk := 0; kk < kslice; kk++ {
				brow := c.LoadVec(c.Seq(b+mem.Addr(((k0+kk)*m.N)*4), m.N), false)
				for j := 0; j < m.N; j++ {
					partial[j] += arow[kk] * brow[j]
				}
				c.Work(m.N / 8)
			}

			// Accumulate into C[row][*] under the per-row lock.
			lockAddr := locks + mem.Addr(row*4)
			if !skipLock {
				c.Site("mm.lock.acquire")
				if acquireFence {
					SpinLock(c, lockAddr, casScope, fenceScope)
				} else {
					SpinLockNoFence(c, lockAddr, casScope)
				}
			}
			rowBase := cOut + mem.Addr(row*m.N*4)
			cur := c.Site("mm.cs.load").LoadVec(c.Seq(rowBase, m.N), false)
			for j := 0; j < m.N; j++ {
				partial[j] += cur[j]
			}
			c.Site("mm.cs.store").StoreVec(c.Seq(rowBase, m.N), partial, false)
			if !skipLock {
				c.Site("mm.lock.release")
				Unlock(c, lockAddr, gpu.ScopeDevice, casScope)
			}
		}
	})
	if err != nil {
		return err
	}

	if len(active) == 0 {
		for i := 0; i < m.M; i++ {
			for j := 0; j < m.N; j++ {
				var want uint32
				for k := 0; k < m.K; k++ {
					want += av[i*m.K+k] * bv[k*m.N+j]
				}
				if got := d.Mem().Read(cOut + mem.Addr((i*m.N+j)*4)); got != want {
					return fmt.Errorf("mm: C[%d][%d] = %d, want %d", i, j, got, want)
				}
			}
		}
	}
	return nil
}
