package scor_test

import (
	"testing"

	"scord/internal/config"
	"scord/internal/gpu"
	"scord/internal/scor"
	"scord/internal/scor/micro"
)

// TestExtensionMicrobenchmarks runs the Section VI extension scenarios
// (ITS and explicit acquire/release) with the matching detector extension
// enabled, and asserts detection exactly as for the main 32.
func TestExtensionMicrobenchmarks(t *testing.T) {
	for _, m := range micro.Extensions() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			cfg := config.Default().WithDetector(config.ModeFull4B)
			cfg.Detector.ITS = m.NeedsITS()
			cfg.Detector.AcqRel = m.NeedsAcqRel()
			d, err := gpu.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(d, nil); err != nil {
				t.Fatalf("run: %v", err)
			}
			res := scor.MatchRaces(d, m.ExpectedRaces(nil))
			if len(res.Missed) > 0 {
				t.Errorf("missed: %v (%d records)", res.Missed, res.AllRecords)
				for _, r := range d.Races() {
					t.Logf("record: %s", d.DescribeRecord(r))
				}
			}
			for _, r := range res.FalsePos {
				t.Errorf("false positive: %s", d.DescribeRecord(r))
			}
		})
	}
}

// TestExtensionScenariosInertWithoutExtensions: with the extensions off,
// the racey ITS scenario is invisible (pre-Volta semantics) and nothing
// crashes.
func TestExtensionScenariosInertWithoutExtensions(t *testing.T) {
	for _, m := range micro.Extensions() {
		if !m.NeedsITS() {
			continue
		}
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			d, err := gpu.New(config.Default().WithDetector(config.ModeFull4B))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(d, nil); err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, r := range d.Races() {
				t.Errorf("ITS-off run reported: %s", d.DescribeRecord(r))
			}
		})
	}
}
