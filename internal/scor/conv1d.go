package scor

import (
	"fmt"

	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/mem"
)

// Conv1D is the One-Dimensional Convolution benchmark of Table II: each
// block accumulates filter taps into its range of the output array using
// atomic adds. Outputs interior to a block are only touched by that
// block's warps, so block-scope atomics suffice; outputs in the halo
// around block boundaries receive contributions from two blocks and need
// device-scope atomics ("updates memory using scoped atomics based on
// whether other blocks are updating the same location").
//
// This is the suite's most atomic-intensive benchmark, which is why the
// paper observes its worst-case detection overhead on it (Figure 8).
//
// Injection:
//   - "halo-atomic": halo updates use block scope — a scoped atomic race
//     on the output array.
type Conv1D struct {
	N      int // input elements
	Taps   int // filter length (odd)
	Blocks int
	TPB    int
}

// NewConv1D returns the benchmark at its default scaled-down size.
func NewConv1D() *Conv1D { return &Conv1D{N: 32768, Taps: 9, Blocks: 16, TPB: 256} }

// Name implements Benchmark.
func (v *Conv1D) Name() string { return "1DC" }

// Injections implements Benchmark.
func (v *Conv1D) Injections() []string { return []string{"halo-atomic"} }

// ExpectedRaces implements Benchmark.
func (v *Conv1D) ExpectedRaces(active []string) []RaceSpec {
	if !has(active, "halo-atomic") {
		return nil
	}
	return []RaceSpec{{
		ID:    "1dc.halo.block-atomic",
		Alloc: "1dc.out",
		Kinds: []core.RaceKind{core.RaceScopedAtomic},
	}}
}

// Run implements Benchmark.
func (v *Conv1D) Run(d *gpu.Device, active []string) error {
	validateInjections(v, active)
	ws := d.Config().WarpSize
	warps := v.TPB / ws
	chunk := v.N / v.Blocks
	if v.N%v.Blocks != 0 || chunk%(warps*ws) != 0 {
		return fmt.Errorf("1dc: N=%d does not tile into %d blocks x %d warps", v.N, v.Blocks, warps)
	}
	if v.Taps%2 == 0 {
		return fmt.Errorf("1dc: filter length %d must be odd", v.Taps)
	}
	half := v.Taps / 2

	in := d.Alloc("1dc.in", v.N)
	filt := d.Alloc("1dc.filter", v.Taps)
	out := d.Alloc("1dc.out", v.N)

	rng := newRNG(d, 0x1dc)
	iv := make([]uint32, v.N)
	fv := make([]uint32, v.Taps)
	for i := range iv {
		iv[i] = uint32(rng.Intn(16))
	}
	for i := range fv {
		fv[i] = uint32(rng.Intn(8))
	}
	d.Mem().HostWrite(in, iv)
	d.Mem().HostWrite(filt, fv)

	haloScope := gpu.ScopeDevice
	if has(active, "halo-atomic") {
		haloScope = gpu.ScopeBlock
	}

	perWarp := chunk / warps
	err := d.Launch("1dc.convolve", v.Blocks, v.TPB, func(c *gpu.Ctx) {
		b0 := c.Block * chunk
		b1 := b0 + chunk
		s := b0 + c.Warp*perWarp
		// The filter is tiny and read-only; load it once per warp.
		fl := append([]uint32(nil), c.LoadVec(c.Seq(filt, v.Taps), false)...)

		intAddrs := make([]mem.Addr, 0, ws)
		intVals := make([]uint32, 0, ws)
		haloAddrs := make([]mem.Addr, 0, ws)
		haloVals := make([]uint32, 0, ws)

		for base := s; base < s+perWarp; base += ws {
			vals := append([]uint32(nil), c.LoadVec(c.Seq(in+mem.Addr(base*4), ws), false)...)
			// Each input element in[i] contributes in[i]*f[k] to
			// out[i+k-half] for every tap k. Per-lane contributions are
			// added atomically: block scope when the destination is
			// interior to this block's output range (no other block can
			// touch it), device scope in the halo near block boundaries.
			for k := 0; k < v.Taps; k++ {
				c.Work(ws / 8)
				intAddrs, intVals = intAddrs[:0], intVals[:0]
				haloAddrs, haloVals = haloAddrs[:0], haloVals[:0]
				for lane := 0; lane < ws; lane++ {
					dst := base + lane + k - half
					if dst < 0 || dst >= v.N {
						continue
					}
					add := vals[lane] * fl[k]
					if add == 0 {
						continue
					}
					if dst >= b0+half && dst < b1-half {
						intAddrs = append(intAddrs, out+mem.Addr(dst*4))
						intVals = append(intVals, add)
					} else {
						haloAddrs = append(haloAddrs, out+mem.Addr(dst*4))
						haloVals = append(haloVals, add)
					}
				}
				if len(intAddrs) > 0 {
					c.Site("1dc.add.interior").AtomicAddVec(intAddrs, intVals, gpu.ScopeBlock)
				}
				if len(haloAddrs) > 0 {
					c.Site("1dc.add.halo").AtomicAddVec(haloAddrs, haloVals, haloScope)
				}
			}
		}
	})
	if err != nil {
		return err
	}

	if len(active) == 0 {
		for i := 0; i < v.N; i++ {
			var want uint32
			for k := 0; k < v.Taps; k++ {
				src := i - (k - half)
				if src >= 0 && src < v.N {
					want += iv[src] * fv[k]
				}
			}
			if got := d.Mem().Read(out + mem.Addr(i*4)); got != want {
				return fmt.Errorf("1dc: out[%d] = %d, want %d", i, got, want)
			}
		}
	}
	return nil
}
