package scor

import (
	"testing"

	"scord/internal/config"
	"scord/internal/gpu"
)

// TestScaledAppsStillVerify: a scaled benchmark remains functionally
// correct and detector-clean (divisibility preserved).
func TestScaledAppsStillVerify(t *testing.T) {
	for _, b := range []Benchmark{NewRED(), NewR110(), NewConv1D()} {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			if err := Scale(b, 2); err != nil {
				t.Fatal(err)
			}
			cfg := config.Default().WithDetector(config.ModeFull4B)
			cfg.DeviceMemBytes *= 2
			d, err := gpu.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Run(d, nil); err != nil {
				t.Fatalf("scaled run: %v", err)
			}
			if n := len(d.Races()); n != 0 {
				t.Fatalf("%d false positives at scale 2", n)
			}
		})
	}
}

// TestScaleValidation rejects nonsense factors and leaves factor 1 alone.
func TestScaleValidation(t *testing.T) {
	if err := Scale(NewRED(), 0); err == nil {
		t.Fatal("scale 0 accepted")
	}
	r := NewRED()
	n := r.N
	if err := Scale(r, 1); err != nil || r.N != n {
		t.Fatal("scale 1 changed the benchmark")
	}
}
