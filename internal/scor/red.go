package scor

import (
	"fmt"

	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/mem"
)

// RED is the Reduction benchmark of Table II (derived from CUDA's
// threadfenceReduction sample, Figure 4 of the paper): every block reduces
// a chunk of a large array, publishes its partial sum with a device-scope
// fence, and the last block to arrive reduces the per-block sums.
//
// Injections:
//   - "fence":  the partial-sum publish uses a block-scope fence — a scoped
//     fence race on g_odata (Figure 4's discussed bug).
//   - "atomic": the last-block arrival counter uses a block-scope atomic —
//     a scoped atomic race on the counter.
type RED struct {
	N      int // elements (multiple of Blocks*Threads)
	Blocks int
	TPB    int // threads per block
}

// NewRED returns the benchmark at its default scaled-down size.
func NewRED() *RED { return &RED{N: 1 << 17, Blocks: 32, TPB: 256} }

// Name implements Benchmark.
func (r *RED) Name() string { return "RED" }

// Injections implements Benchmark.
func (r *RED) Injections() []string { return []string{"fence", "atomic"} }

// ExpectedRaces implements Benchmark.
func (r *RED) ExpectedRaces(active []string) []RaceSpec {
	var specs []RaceSpec
	if has(active, "fence") {
		specs = append(specs, RaceSpec{
			ID:    "red.publish.block-fence",
			Alloc: "red.g_odata",
			Kinds: []core.RaceKind{core.RaceMissingDeviceFence},
		})
	}
	if has(active, "atomic") {
		specs = append(specs, RaceSpec{
			ID:    "red.arrive.block-atomic",
			Alloc: "red.counter",
			Kinds: []core.RaceKind{core.RaceScopedAtomic},
		})
	}
	return specs
}

// Run implements Benchmark.
func (r *RED) Run(d *gpu.Device, active []string) error {
	validateInjections(r, active)
	warps := r.TPB / d.Config().WarpSize
	if r.N%(r.Blocks*warps*d.Config().WarpSize) != 0 {
		return fmt.Errorf("red: N=%d not divisible by grid", r.N)
	}

	in := d.Alloc("red.input", r.N)
	warpSums := d.Alloc("red.warpSums", r.Blocks*warps)
	gOdata := d.Alloc("red.g_odata", r.Blocks)
	counter := d.Alloc("red.counter", 1)
	result := d.Alloc("red.result", 1)

	var want uint32
	vals := make([]uint32, r.N)
	rng := newRNG(d, 0x9ed)
	for i := range vals {
		vals[i] = uint32(rng.Intn(1000))
		want += vals[i]
	}
	d.Mem().HostWrite(in, vals)

	perWarp := r.N / (r.Blocks * warps)
	fenceScope := gpu.ScopeDevice
	if has(active, "fence") {
		fenceScope = gpu.ScopeBlock
	}
	arriveScope := gpu.ScopeDevice
	if has(active, "atomic") {
		arriveScope = gpu.ScopeBlock
	}

	err := d.Launch("red.reduce", r.Blocks, r.TPB, func(c *gpu.Ctx) {
		ws := c.WarpSize
		// Phase 1: each warp reduces its slice with coalesced weak loads
		// (the input is read-only after host initialization).
		base := in + mem.Addr(c.GlobalWarp()*perWarp*4)
		var sum uint32
		for off := 0; off < perWarp; off += ws {
			for _, v := range c.LoadVec(c.Seq(base+mem.Addr(off*4), ws), false) {
				sum += v
			}
			c.Work(10) // address arithmetic and the adds
		}
		// Per-warp partials are consumed by warp 0 after the barrier.
		c.Site("red.warpSum.store").Store(warpSums+mem.Addr((c.Block*c.Warps+c.Warp)*4), sum)
		c.SyncThreads()

		if c.Warp != 0 {
			return
		}
		// Phase 2: warp 0 folds the block's partials and publishes.
		total := uint32(0)
		for _, v := range c.Site("red.warpSum.load").LoadVec(c.Seq(warpSums+mem.Addr(c.Block*c.Warps*4), c.Warps), false) {
			total += v
		}
		c.Site("red.publish").StoreV(gOdata+mem.Addr(c.Block*4), total)
		c.Fence(fenceScope) // device scope required: the consumer is another block
		c.Site("red.arrive").AtomicAdd(counter, 1, arriveScope)

		// Phase 3: the highest block waits for every block's arrival and
		// reduces the per-block sums. The wait is bounded so the "atomic"
		// injection (which strands the counter in per-SM L1s) degrades
		// the result instead of hanging.
		if c.Block == c.Blocks-1 {
			c.Site("red.arrive.wait")
			waitAtLeastBounded(c, counter, uint32(c.Blocks), 500)
			final := uint32(0)
			for _, v := range c.Site("red.final").LoadVec(c.Seq(gOdata, c.Blocks), true) {
				final += v
			}
			c.StoreV(result, final)
		}
	})
	if err != nil {
		return err
	}

	if len(active) == 0 {
		if got := d.Mem().Read(result); got != want {
			return fmt.Errorf("red: result %d, want %d", got, want)
		}
	}
	return nil
}
