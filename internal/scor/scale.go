package scor

import "fmt"

// Scale multiplies a benchmark's input size by f (>= 1), preserving grid
// geometry and divisibility. Scaling toward the paper's input sizes
// lengthens simulations roughly linearly; scale the device memory arena
// alongside (Config.DeviceMemBytes) to keep the metadata cache in the same
// folded regime. Microbenchmarks are fixed-size and are returned
// unchanged.
func Scale(b Benchmark, f int) error {
	if f < 1 {
		return fmt.Errorf("scor: scale factor %d < 1", f)
	}
	if f == 1 {
		return nil
	}
	switch app := b.(type) {
	case *RED:
		app.N *= f
	case *MM:
		app.M *= f
		app.N *= f
	case *R110:
		app.N *= f
	case *GCOL:
		app.V *= f
		app.E *= f
	case *GCON:
		app.V *= f
		app.E *= f
	case *Conv1D:
		app.N *= f
	case *UTS:
		app.Roots *= f
		app.CapL *= f
		app.CapG *= f
	default:
		// Microbenchmarks and unknown benchmarks keep their fixed size.
	}
	return nil
}
