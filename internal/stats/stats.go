// Package stats collects the simulation counters that every figure in the
// ScoRD evaluation is derived from: execution cycles, cache and DRAM access
// counts split into data vs. race-metadata traffic, interconnect flits, and
// detector stalls.
package stats

import "fmt"

// Stats accumulates counters over one simulated kernel (or a whole run).
// All counters are owned by the single-threaded simulation engine, so no
// synchronization is required.
type Stats struct {
	Cycles uint64 // total execution cycles of the run

	Instructions uint64 // warp-level instructions issued (memory + compute)
	MemOps       uint64 // warp-level memory operations (loads/stores/atomics)
	Atomics      uint64
	Fences       uint64
	Barriers     uint64

	L1Accesses uint64
	L1Hits     uint64

	L2DataAccesses uint64 // L2 lookups for program data
	L2DataMisses   uint64
	L2MetaAccesses uint64 // L2 lookups for race metadata
	L2MetaMisses   uint64

	DRAMDataAccesses uint64 // DRAM transactions for program data (incl. writebacks)
	DRAMMetaAccesses uint64 // DRAM transactions for race metadata

	NOCFlits      uint64 // total flits crossing the interconnect
	NOCExtraFlits uint64 // flits attributable to detector payload/metadata

	DetectorChecks    uint64 // memory accesses examined by the detector
	DetectorPrelimOK  uint64 // accesses proven trivially race-free (Table III)
	DetectorStalls    uint64 // cycles an L1 hit stalled on a full detector inbox
	MetaCacheEvicts   uint64 // tag-mismatch overwrites in the software cache
	RacesReported     uint64 // race records appended (pre-dedup)
	ReleaseObserved   uint64 // acquire/release extension: releases recorded
	DivergentAccesses uint64 // ITS extension: accesses checked at thread granularity
}

// DRAMAccesses returns total DRAM transactions (data + metadata).
func (s *Stats) DRAMAccesses() uint64 {
	return s.DRAMDataAccesses + s.DRAMMetaAccesses
}

// L1HitRate returns the fraction of L1 accesses that hit, or 0 when no
// accesses occurred.
func (s *Stats) L1HitRate() float64 {
	if s.L1Accesses == 0 {
		return 0
	}
	return float64(s.L1Hits) / float64(s.L1Accesses)
}

// Add accumulates o into s. Useful when aggregating per-kernel stats into a
// per-application total.
func (s *Stats) Add(o *Stats) {
	s.Cycles += o.Cycles
	s.Instructions += o.Instructions
	s.MemOps += o.MemOps
	s.Atomics += o.Atomics
	s.Fences += o.Fences
	s.Barriers += o.Barriers
	s.L1Accesses += o.L1Accesses
	s.L1Hits += o.L1Hits
	s.L2DataAccesses += o.L2DataAccesses
	s.L2DataMisses += o.L2DataMisses
	s.L2MetaAccesses += o.L2MetaAccesses
	s.L2MetaMisses += o.L2MetaMisses
	s.DRAMDataAccesses += o.DRAMDataAccesses
	s.DRAMMetaAccesses += o.DRAMMetaAccesses
	s.NOCFlits += o.NOCFlits
	s.NOCExtraFlits += o.NOCExtraFlits
	s.DetectorChecks += o.DetectorChecks
	s.DetectorPrelimOK += o.DetectorPrelimOK
	s.DetectorStalls += o.DetectorStalls
	s.MetaCacheEvicts += o.MetaCacheEvicts
	s.RacesReported += o.RacesReported
	s.ReleaseObserved += o.ReleaseObserved
	s.DivergentAccesses += o.DivergentAccesses
}

// Sub returns the field-wise difference s - o. Every field is a monotone
// counter, so with o an earlier snapshot of the same run the result is the
// activity that happened in between — the primitive behind per-kernel
// breakdowns (gpu.KernelRun) and the cycle-domain sampler in internal/obs.
func (s *Stats) Sub(o *Stats) Stats {
	return Stats{
		Cycles:            s.Cycles - o.Cycles,
		Instructions:      s.Instructions - o.Instructions,
		MemOps:            s.MemOps - o.MemOps,
		Atomics:           s.Atomics - o.Atomics,
		Fences:            s.Fences - o.Fences,
		Barriers:          s.Barriers - o.Barriers,
		L1Accesses:        s.L1Accesses - o.L1Accesses,
		L1Hits:            s.L1Hits - o.L1Hits,
		L2DataAccesses:    s.L2DataAccesses - o.L2DataAccesses,
		L2DataMisses:      s.L2DataMisses - o.L2DataMisses,
		L2MetaAccesses:    s.L2MetaAccesses - o.L2MetaAccesses,
		L2MetaMisses:      s.L2MetaMisses - o.L2MetaMisses,
		DRAMDataAccesses:  s.DRAMDataAccesses - o.DRAMDataAccesses,
		DRAMMetaAccesses:  s.DRAMMetaAccesses - o.DRAMMetaAccesses,
		NOCFlits:          s.NOCFlits - o.NOCFlits,
		NOCExtraFlits:     s.NOCExtraFlits - o.NOCExtraFlits,
		DetectorChecks:    s.DetectorChecks - o.DetectorChecks,
		DetectorPrelimOK:  s.DetectorPrelimOK - o.DetectorPrelimOK,
		DetectorStalls:    s.DetectorStalls - o.DetectorStalls,
		MetaCacheEvicts:   s.MetaCacheEvicts - o.MetaCacheEvicts,
		RacesReported:     s.RacesReported - o.RacesReported,
		ReleaseObserved:   s.ReleaseObserved - o.ReleaseObserved,
		DivergentAccesses: s.DivergentAccesses - o.DivergentAccesses,
	}
}

// Fields returns every counter as (name, value) pairs in struct order —
// the canonical, deterministic enumeration used by CSV and Prometheus
// serialization so a new counter cannot be silently dropped from one
// output format.
func (s *Stats) Fields() []Field {
	return []Field{
		{"cycles", s.Cycles},
		{"instructions", s.Instructions},
		{"mem_ops", s.MemOps},
		{"atomics", s.Atomics},
		{"fences", s.Fences},
		{"barriers", s.Barriers},
		{"l1_accesses", s.L1Accesses},
		{"l1_hits", s.L1Hits},
		{"l2_data_accesses", s.L2DataAccesses},
		{"l2_data_misses", s.L2DataMisses},
		{"l2_meta_accesses", s.L2MetaAccesses},
		{"l2_meta_misses", s.L2MetaMisses},
		{"dram_data_accesses", s.DRAMDataAccesses},
		{"dram_meta_accesses", s.DRAMMetaAccesses},
		{"noc_flits", s.NOCFlits},
		{"noc_extra_flits", s.NOCExtraFlits},
		{"detector_checks", s.DetectorChecks},
		{"detector_prelim_ok", s.DetectorPrelimOK},
		{"detector_stalls", s.DetectorStalls},
		{"meta_cache_evicts", s.MetaCacheEvicts},
		{"races_reported", s.RacesReported},
		{"release_observed", s.ReleaseObserved},
		{"divergent_accesses", s.DivergentAccesses},
	}
}

// Field is one named counter value from Fields.
type Field struct {
	Name  string
	Value uint64
}

// String renders a compact human-readable summary.
func (s *Stats) String() string {
	return fmt.Sprintf(
		"cycles=%d memops=%d l1hit=%.1f%% l2(data=%d meta=%d) dram(data=%d meta=%d) checks=%d races=%d",
		s.Cycles, s.MemOps, 100*s.L1HitRate(),
		s.L2DataAccesses, s.L2MetaAccesses,
		s.DRAMDataAccesses, s.DRAMMetaAccesses,
		s.DetectorChecks, s.RacesReported)
}
