package stats

import "testing"

func TestAddAccumulatesEveryField(t *testing.T) {
	a := Stats{
		Cycles: 1, Instructions: 2, MemOps: 3, Atomics: 4, Fences: 5,
		Barriers: 6, L1Accesses: 7, L1Hits: 8, L2DataAccesses: 9,
		L2DataMisses: 10, L2MetaAccesses: 11, L2MetaMisses: 12,
		DRAMDataAccesses: 13, DRAMMetaAccesses: 14, NOCFlits: 15,
		NOCExtraFlits: 16, DetectorChecks: 17, DetectorPrelimOK: 18,
		DetectorStalls: 19, MetaCacheEvicts: 20, RacesReported: 21,
		ReleaseObserved: 22, DivergentAccesses: 23,
	}
	var b Stats
	b.Add(&a)
	b.Add(&a)
	if b.Cycles != 2 || b.DivergentAccesses != 46 || b.NOCExtraFlits != 32 {
		t.Fatalf("Add lost fields: %+v", b)
	}
	if b.DRAMAccesses() != 2*(13+14) {
		t.Fatalf("DRAMAccesses = %d", b.DRAMAccesses())
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.L1HitRate() != 0 {
		t.Fatal("hit rate of zero accesses")
	}
	s.L1Accesses, s.L1Hits = 4, 3
	if s.L1HitRate() != 0.75 {
		t.Fatalf("hit rate = %f", s.L1HitRate())
	}
}

func TestStringIsInformative(t *testing.T) {
	s := Stats{Cycles: 42, MemOps: 7}
	out := s.String()
	if len(out) == 0 || out[0] != 'c' {
		t.Fatalf("String() = %q", out)
	}
}
