package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestAddAccumulatesEveryField(t *testing.T) {
	a := Stats{
		Cycles: 1, Instructions: 2, MemOps: 3, Atomics: 4, Fences: 5,
		Barriers: 6, L1Accesses: 7, L1Hits: 8, L2DataAccesses: 9,
		L2DataMisses: 10, L2MetaAccesses: 11, L2MetaMisses: 12,
		DRAMDataAccesses: 13, DRAMMetaAccesses: 14, NOCFlits: 15,
		NOCExtraFlits: 16, DetectorChecks: 17, DetectorPrelimOK: 18,
		DetectorStalls: 19, MetaCacheEvicts: 20, RacesReported: 21,
		ReleaseObserved: 22, DivergentAccesses: 23,
	}
	var b Stats
	b.Add(&a)
	b.Add(&a)
	if b.Cycles != 2 || b.DivergentAccesses != 46 || b.NOCExtraFlits != 32 {
		t.Fatalf("Add lost fields: %+v", b)
	}
	if b.DRAMAccesses() != 2*(13+14) {
		t.Fatalf("DRAMAccesses = %d", b.DRAMAccesses())
	}
}

// fill sets every uint64 field of a Stats to a distinct pseudo-random
// value via reflection, so a counter added to the struct is exercised
// without touching this test.
func fill(rng *rand.Rand) Stats {
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(uint64(rng.Intn(1 << 20)))
	}
	return s
}

// TestSubInvertsAddEveryField: Sub is the exact inverse of Add on every
// field. Checked by reflection over the struct, so adding a counter to
// Stats without extending Add or Sub fails here instead of silently
// corrupting per-kernel deltas and sampled series.
func TestSubInvertsAddEveryField(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 32; trial++ {
		before, delta := fill(rng), fill(rng)
		after := before
		after.Add(&delta)
		got := after.Sub(&before)
		gv, dv := reflect.ValueOf(got), reflect.ValueOf(delta)
		for i := 0; i < gv.NumField(); i++ {
			if gv.Field(i).Uint() != dv.Field(i).Uint() {
				t.Fatalf("field %s: Sub(Add(x)) = %d, want %d — Add or Sub is missing the field",
					gv.Type().Field(i).Name, gv.Field(i).Uint(), dv.Field(i).Uint())
			}
		}
	}
}

// TestSubOfSelfIsZero: s.Sub(s) is the zero value, field by field.
func TestSubOfSelfIsZero(t *testing.T) {
	s := fill(rand.New(rand.NewSource(3)))
	if d := s.Sub(&s); d != (Stats{}) {
		t.Fatalf("s.Sub(s) = %+v, want zero", d)
	}
}

// TestFieldsCoverEveryCounter: Fields enumerates exactly one entry per
// struct field, in struct order, with matching values and unique names —
// the property the CSV/Prometheus serializers in internal/obs rely on.
func TestFieldsCoverEveryCounter(t *testing.T) {
	s := fill(rand.New(rand.NewSource(11)))
	fs := s.Fields()
	v := reflect.ValueOf(s)
	if len(fs) != v.NumField() {
		t.Fatalf("Fields() has %d entries, struct has %d fields", len(fs), v.NumField())
	}
	seen := map[string]bool{}
	for i, f := range fs {
		if f.Name == "" || seen[f.Name] {
			t.Fatalf("entry %d: empty or duplicate metric name %q", i, f.Name)
		}
		seen[f.Name] = true
		if f.Value != v.Field(i).Uint() {
			t.Fatalf("entry %d (%s) = %d, want struct field %s = %d",
				i, f.Name, f.Value, v.Type().Field(i).Name, v.Field(i).Uint())
		}
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.L1HitRate() != 0 {
		t.Fatal("hit rate of zero accesses")
	}
	s.L1Accesses, s.L1Hits = 4, 3
	if s.L1HitRate() != 0.75 {
		t.Fatalf("hit rate = %f", s.L1HitRate())
	}
}

func TestStringIsInformative(t *testing.T) {
	s := Stats{Cycles: 42, MemOps: 7}
	out := s.String()
	if len(out) == 0 || out[0] != 'c' {
		t.Fatalf("String() = %q", out)
	}
}
