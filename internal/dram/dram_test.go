package dram

import (
	"testing"
	"testing/quick"

	"scord/internal/config"
	"scord/internal/mem"
)

func TestRowBufferHitFasterThanMiss(t *testing.T) {
	d := New(config.Default())
	first := d.Access(0, 0)              // row miss: activate + CAS
	second := d.Access(0, first) - first // same line: row hit
	if second >= first {
		t.Fatalf("row hit (%d cycles) not faster than activate (%d)", second, first)
	}
}

func TestChannelParallelism(t *testing.T) {
	cfg := config.Default()
	d := New(cfg)
	// Consecutive lines interleave over channels: issuing MemChannels
	// transactions at once should not serialize.
	var last uint64
	for i := 0; i < cfg.MemChannels; i++ {
		done := d.Access(mem.Addr(i*cfg.LineSize), 0)
		if done > last {
			last = done
		}
	}
	serial := d.Access(0, 0)
	for i := 1; i < cfg.MemChannels; i++ {
		serial = d.Access(0, serial)
	}
	if last >= serial {
		t.Fatalf("parallel channels (%d) not faster than serialized bank (%d)", last, serial)
	}
}

func TestBankOccupancySerializes(t *testing.T) {
	d := New(config.Default())
	a := mem.Addr(0)
	t1 := d.Access(a, 0)
	t2 := d.Access(a, 0) // same bank, ready at 0: must queue behind t1
	if t2 <= t1 {
		t.Fatalf("second access (%d) did not queue behind first (%d)", t2, t1)
	}
}

func TestAccessCounting(t *testing.T) {
	d := New(config.Default())
	for i := 0; i < 5; i++ {
		d.Access(mem.Addr(i*128), 0)
	}
	if d.Accesses() != 5 {
		t.Fatalf("Accesses = %d, want 5", d.Accesses())
	}
}

// TestChannelAccessCounting: per-channel counts attribute each transaction
// to the channel mapAddr routes it to, and they sum to the total.
func TestChannelAccessCounting(t *testing.T) {
	cfg := config.Default()
	d := New(cfg)
	want := make([]uint64, cfg.MemChannels)
	for i := 0; i < 3*cfg.MemChannels+1; i++ {
		a := mem.Addr(i * cfg.LineSize)
		ch, _, _ := d.mapAddr(a)
		want[ch]++
		d.Access(a, 0)
	}
	got := d.ChannelAccesses()
	if len(got) != cfg.MemChannels {
		t.Fatalf("ChannelAccesses has %d entries, want %d", len(got), cfg.MemChannels)
	}
	var sum uint64
	for ch, n := range got {
		sum += n
		if n != want[ch] {
			t.Fatalf("channel %d = %d accesses, want %d", ch, n, want[ch])
		}
	}
	if sum != d.Accesses() {
		t.Fatalf("channel counts sum to %d, total is %d", sum, d.Accesses())
	}
	// The Into variant fills without allocating a fresh slice.
	into := make([]uint64, cfg.MemChannels)
	d.ChannelAccessesInto(into)
	for ch := range into {
		if into[ch] != got[ch] {
			t.Fatalf("ChannelAccessesInto[%d] = %d, want %d", ch, into[ch], got[ch])
		}
	}
}

// Property: completion is never before the ready cycle, and per-bank
// completions are monotone.
func TestTimingMonotoneProperty(t *testing.T) {
	cfg := config.Default()
	f := func(ops []uint16) bool {
		d := New(cfg)
		lastPerBank := map[[2]int]uint64{}
		clock := uint64(0)
		for _, op := range ops {
			a := mem.Addr(op) * 128
			done := d.Access(a, clock)
			if done < clock {
				return false
			}
			ch, bk, _ := d.mapAddr(a)
			k := [2]int{ch, bk}
			if done <= lastPerBank[k] && lastPerBank[k] != 0 {
				return false
			}
			lastPerBank[k] = done
			clock += uint64(op % 7)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
