// Package dram models the GPU's GDDR5-style memory system: multiple
// independent channels, banks with open-row policy, and the timing
// constraints of Table V (tRRD, tRCD, tRAS, tRP, tRC, tCL). The model is a
// timing calculator: given a transaction's address and the cycle it becomes
// ready, it returns the cycle its data is available, advancing per-bank
// state. Values are not stored here — the mem package holds them.
package dram

import (
	"scord/internal/config"
	"scord/internal/mem"
)

type bank struct {
	openRow      int64  // -1 when precharged
	busyUntil    uint64 // data bus / bank occupancy
	lastActivate uint64 // for tRC between activates
	actEnd       uint64 // activate completion (for tRAS before precharge)
}

type channel struct {
	banks        []bank
	lastActivate uint64 // for tRRD across banks in a channel
}

// DRAM is the collection of channels. Not safe for concurrent use.
type DRAM struct {
	cfg        config.Config
	channels   []channel
	rowBytes   uint64
	accesses   uint64
	rowHits    uint64
	chAccesses []uint64 // per-channel transaction counts, indexed by channel
}

// New builds the DRAM model from the hardware configuration.
func New(cfg config.Config) *DRAM {
	d := &DRAM{
		cfg:        cfg,
		channels:   make([]channel, cfg.MemChannels),
		rowBytes:   2048,
		chAccesses: make([]uint64, cfg.MemChannels),
	}
	for i := range d.channels {
		d.channels[i].banks = make([]bank, cfg.BanksPerChan)
		for b := range d.channels[i].banks {
			d.channels[i].banks[b].openRow = -1
		}
	}
	return d
}

// mapAddr interleaves consecutive lines across channels, then banks.
func (d *DRAM) mapAddr(a mem.Addr) (ch, bk int, row int64) {
	lineSz := uint64(d.cfg.LineSize)
	lineNum := uint64(a) / lineSz
	ch = int(lineNum % uint64(d.cfg.MemChannels))
	perChan := lineNum / uint64(d.cfg.MemChannels)
	bk = int(perChan % uint64(d.cfg.BanksPerChan))
	perBank := perChan / uint64(d.cfg.BanksPerChan)
	row = int64(perBank * lineSz / d.rowBytes)
	return ch, bk, row
}

// Access schedules one line-sized transaction (read or writeback — the
// timing is symmetric in this model) that becomes ready at cycle ready.
// It returns the completion cycle.
func (d *DRAM) Access(a mem.Addr, ready uint64) uint64 {
	chIdx, bkIdx, row := d.mapAddr(a)
	c := &d.channels[chIdx]
	b := &c.banks[bkIdx]
	d.accesses++
	d.chAccesses[chIdx]++

	start := max64(ready, b.busyUntil)
	var dataAt uint64
	if b.openRow == row {
		// Row-buffer hit: CAS + burst.
		d.rowHits++
		dataAt = start + uint64(d.cfg.TCL)
	} else {
		// Row miss: respect tRC since the previous activate on this bank
		// and tRRD since the last activate on this channel; precharge the
		// open row (after tRAS) then activate + CAS.
		actReady := start
		if b.openRow >= 0 {
			pre := max64(start, b.actEnd) // precharge no earlier than tRAS after activate
			actReady = pre + uint64(d.cfg.TRP)
		}
		actReady = max64(actReady, b.lastActivate+uint64(d.cfg.TRC))
		actReady = max64(actReady, c.lastActivate+uint64(d.cfg.TRRD))
		b.lastActivate = actReady
		c.lastActivate = actReady
		b.actEnd = actReady + uint64(d.cfg.TRAS)
		b.openRow = row
		dataAt = actReady + uint64(d.cfg.TRCD) + uint64(d.cfg.TCL)
	}
	done := dataAt + uint64(d.cfg.BurstCycles)
	b.busyUntil = done
	return done
}

// Accesses returns the number of transactions scheduled so far.
func (d *DRAM) Accesses() uint64 { return d.accesses }

// ChannelAccesses copies the per-channel transaction counts (indexed by
// channel). The per-channel split shows which channels a workload loads —
// the cycle-domain sampler in internal/obs snapshots it every interval.
func (d *DRAM) ChannelAccesses() []uint64 {
	out := make([]uint64, len(d.chAccesses))
	copy(out, d.chAccesses)
	return out
}

// ChannelAccessesInto copies the per-channel counts into dst, which must
// have one element per channel. The allocation-free variant for callers
// that snapshot repeatedly.
func (d *DRAM) ChannelAccessesInto(dst []uint64) {
	copy(dst, d.chAccesses)
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	if d.accesses == 0 {
		return 0
	}
	return float64(d.rowHits) / float64(d.accesses)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
