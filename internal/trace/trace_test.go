package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRingKeepsMostRecent(t *testing.T) {
	tr := New(3)
	for i := 1; i <= 5; i++ {
		tr.Record(Event{Cycle: uint64(i), Kind: EvLoad})
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Cycle != 3 || evs[2].Cycle != 5 {
		t.Fatalf("kept wrong window: %v", evs)
	}
}

func TestChronologicalOrderProperty(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw)%16 + 1
		tr := New(capacity)
		for i := 0; i < int(n); i++ {
			tr.Record(Event{Cycle: uint64(i)})
		}
		evs := tr.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].Cycle <= evs[i-1].Cycle {
				return false
			}
		}
		return len(evs) == min(int(n), capacity)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterCountsDropped(t *testing.T) {
	tr := New(8)
	tr.SetFilter(func(e Event) bool { return e.Kind == EvRace })
	tr.Record(Event{Kind: EvLoad})
	tr.Record(Event{Kind: EvRace})
	tr.Record(Event{Kind: EvStore})
	if tr.Len() != 1 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestWriteToFormat(t *testing.T) {
	tr := New(4)
	tr.Record(Event{Cycle: 7, Kind: EvAtomic, Block: 2, Warp: 1, Addr: 0x80, Info: "device"})
	tr.Record(Event{Cycle: 9, Kind: EvFence, Block: 2, Warp: 1, Info: "block"})
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "atomic") || !strings.Contains(out, "0x00000080") || !strings.Contains(out, "fence") {
		t.Fatalf("unexpected dump:\n%s", out)
	}
}

func TestReset(t *testing.T) {
	tr := New(2)
	tr.Record(Event{Cycle: 1})
	tr.Record(Event{Cycle: 2})
	tr.Record(Event{Cycle: 3})
	tr.Reset()
	if tr.Len() != 0 || len(tr.Events()) != 0 {
		t.Fatal("reset kept events")
	}
	tr.Record(Event{Cycle: 4})
	if evs := tr.Events(); len(evs) != 1 || evs[0].Cycle != 4 {
		t.Fatal("tracer unusable after reset")
	}
}

func TestKindStrings(t *testing.T) {
	for k := EvLoad; k <= EvKernel; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty string", k)
		}
	}
}
