package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRingKeepsMostRecent(t *testing.T) {
	tr := New(3)
	for i := 1; i <= 5; i++ {
		tr.Record(Event{Cycle: uint64(i), Kind: EvLoad})
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Cycle != 3 || evs[2].Cycle != 5 {
		t.Fatalf("kept wrong window: %v", evs)
	}
}

func TestChronologicalOrderProperty(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw)%16 + 1
		tr := New(capacity)
		for i := 0; i < int(n); i++ {
			tr.Record(Event{Cycle: uint64(i)})
		}
		evs := tr.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].Cycle <= evs[i-1].Cycle {
				return false
			}
		}
		return len(evs) == min(int(n), capacity)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterCountsDropped(t *testing.T) {
	tr := New(8)
	tr.SetFilter(func(e Event) bool { return e.Kind == EvRace })
	tr.Record(Event{Kind: EvLoad})
	tr.Record(Event{Kind: EvRace})
	tr.Record(Event{Kind: EvStore})
	if tr.Len() != 1 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestWriteToFormat(t *testing.T) {
	tr := New(4)
	tr.Record(Event{Cycle: 7, Kind: EvAtomic, Block: 2, Warp: 1, Addr: 0x80, Info: "device"})
	tr.Record(Event{Cycle: 9, Kind: EvFence, Block: 2, Warp: 1, Info: "block"})
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "atomic") || !strings.Contains(out, "0x00000080") || !strings.Contains(out, "fence") {
		t.Fatalf("unexpected dump:\n%s", out)
	}
}

func TestReset(t *testing.T) {
	tr := New(2)
	tr.Record(Event{Cycle: 1})
	tr.Record(Event{Cycle: 2})
	tr.Record(Event{Cycle: 3})
	tr.Reset()
	if tr.Len() != 0 || len(tr.Events()) != 0 {
		t.Fatal("reset kept events")
	}
	tr.Record(Event{Cycle: 4})
	if evs := tr.Events(); len(evs) != 1 || evs[0].Cycle != 4 {
		t.Fatal("tracer unusable after reset")
	}
}

func TestKindStrings(t *testing.T) {
	for k := EvLoad; k <= EvBarrierWait; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d stringifies as %q", k, s)
		}
	}
	if s := Kind(250).String(); !strings.HasPrefix(s, "Kind(") {
		t.Fatalf("unknown kind stringifies as %q", s)
	}
}

// TestWrapAtExactCapacity: filling the ring to exactly its capacity (no
// wrap) and then one past it must keep the newest events with no
// duplicates, and the wrapped flag must not corrupt the dump when the
// ring is full but the oldest slot is next.
func TestWrapAtExactCapacity(t *testing.T) {
	const capacity = 4
	tr := New(capacity)
	for i := 1; i <= capacity; i++ {
		tr.Record(Event{Cycle: uint64(i)})
	}
	evs := tr.Events()
	if len(evs) != capacity || evs[0].Cycle != 1 || evs[capacity-1].Cycle != capacity {
		t.Fatalf("at capacity: %v", evs)
	}
	// One more evicts exactly the oldest.
	tr.Record(Event{Cycle: capacity + 1})
	evs = tr.Events()
	if len(evs) != capacity || evs[0].Cycle != 2 || evs[capacity-1].Cycle != capacity+1 {
		t.Fatalf("one past capacity: %v", evs)
	}
	seen := map[uint64]bool{}
	for _, e := range evs {
		if seen[e.Cycle] {
			t.Fatalf("duplicate cycle %d in %v", e.Cycle, evs)
		}
		seen[e.Cycle] = true
	}
}

// TestWrapChronologyWithTies: after many wraps, events that share a cycle
// stay in recording order (stable sort), and the dump is chronological —
// the contract the Perfetto exporter's span pairing depends on.
func TestWrapChronologyWithTies(t *testing.T) {
	tr := New(6)
	// Record 3 rounds of (cycle, warp) with cycle ties inside each round;
	// only the last 6 events survive.
	for round := 0; round < 3; round++ {
		for w := 0; w < 4; w++ {
			tr.Record(Event{Cycle: uint64(round), Warp: w})
		}
	}
	evs := tr.Events()
	if len(evs) != 6 {
		t.Fatalf("len = %d", len(evs))
	}
	// Survivors: the last 2 of round 1 (warps 2,3) then all of round 2.
	want := []struct {
		cycle uint64
		warp  int
	}{{1, 2}, {1, 3}, {2, 0}, {2, 1}, {2, 2}, {2, 3}}
	for i, w := range want {
		if evs[i].Cycle != w.cycle || evs[i].Warp != w.warp {
			t.Fatalf("event %d = (cycle %d, warp %d), want (%d, %d)",
				i, evs[i].Cycle, evs[i].Warp, w.cycle, w.warp)
		}
	}
}

// TestSpanEventKinds: the span kinds added for the Perfetto exporter
// round-trip through the ring and render with their addresses suppressed
// (spans carry no data address).
func TestSpanEventKinds(t *testing.T) {
	tr := New(8)
	tr.Record(Event{Cycle: 0, Kind: EvKernel, Info: "mm.mult"})
	tr.Record(Event{Cycle: 5, Kind: EvBarrierWait, Block: 1, Warp: 3})
	tr.Record(Event{Cycle: 9, Kind: EvBarrier, Block: 1, Info: "id=1 warps=2"})
	tr.Record(Event{Cycle: 20, Kind: EvKernelEnd, Info: "mm.mult"})
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"kernel", "barrier-wait", "kernel-end", "mm.mult"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	evs := tr.Events()
	if evs[0].Kind != EvKernel || evs[3].Kind != EvKernelEnd {
		t.Fatalf("span kinds did not survive the ring: %v", evs)
	}
}
