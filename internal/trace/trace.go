// Package trace provides an optional structured execution tracer for the
// simulated GPU: a bounded ring of per-warp events (memory operations,
// fences, barriers, detected races) that can be dumped chronologically.
// It exists for debugging kernels and the detector itself — production
// runs leave it detached and pay nothing.
package trace

import (
	"fmt"
	"io"
	"sort"
)

// Kind classifies a traced event.
type Kind uint8

const (
	// EvLoad is a global-memory load transaction.
	EvLoad Kind = iota
	// EvStore is a global-memory store transaction.
	EvStore
	// EvAtomic is an atomic read-modify-write transaction.
	EvAtomic
	// EvFence is a scoped memory fence.
	EvFence
	// EvBarrier is a block barrier release.
	EvBarrier
	// EvRace is a race detection report.
	EvRace
	// EvKernel marks a kernel launch boundary.
	EvKernel
	// EvKernelEnd marks the completion of the kernel opened by the
	// matching EvKernel; together they delimit a kernel span.
	EvKernelEnd
	// EvBarrierWait marks a warp parking at a block barrier. The interval
	// from a warp's EvBarrierWait to its block's next EvBarrier release is
	// the warp's barrier-wait span.
	EvBarrierWait
)

func (k Kind) String() string {
	switch k {
	case EvLoad:
		return "load"
	case EvStore:
		return "store"
	case EvAtomic:
		return "atomic"
	case EvFence:
		return "fence"
	case EvBarrier:
		return "barrier"
	case EvRace:
		return "RACE"
	case EvKernel:
		return "kernel"
	case EvKernelEnd:
		return "kernel-end"
	case EvBarrierWait:
		return "barrier-wait"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one traced occurrence.
type Event struct {
	Cycle uint64
	Kind  Kind
	Block int
	Warp  int
	Addr  uint64 // first address of the transaction (0 for fences/barriers)
	Info  string // scope, site, kernel name, race kind, ...
}

func (e Event) String() string {
	if e.Addr != 0 {
		return fmt.Sprintf("%10d  b%-3d w%-2d %-7s @%#08x %s", e.Cycle, e.Block, e.Warp, e.Kind, e.Addr, e.Info)
	}
	return fmt.Sprintf("%10d  b%-3d w%-2d %-7s %s", e.Cycle, e.Block, e.Warp, e.Kind, e.Info)
}

// Tracer is a bounded ring buffer of events. Not safe for concurrent use
// (the simulation is single-threaded).
type Tracer struct {
	ring    []Event
	next    int
	wrapped bool
	dropped uint64
	filter  func(Event) bool
}

// New builds a tracer keeping the most recent capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// SetFilter installs a predicate; events it rejects are counted as dropped
// but not stored. A nil filter accepts everything.
func (t *Tracer) SetFilter(f func(Event) bool) { t.filter = f }

// Record appends an event, evicting the oldest when full.
func (t *Tracer) Record(e Event) {
	if t.filter != nil && !t.filter(e) {
		t.dropped++
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % cap(t.ring)
	t.wrapped = true
}

// Len reports the number of retained events.
func (t *Tracer) Len() int { return len(t.ring) }

// Dropped reports events rejected by the filter.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Events returns the retained events in chronological order. Events are
// recorded as the simulator computes them (program order per warp, which
// interleaves across warps), so the dump is sorted by cycle, ties kept in
// recording order.
func (t *Tracer) Events() []Event {
	var out []Event
	if !t.wrapped {
		out = make([]Event, len(t.ring))
		copy(out, t.ring)
	} else {
		out = make([]Event, 0, cap(t.ring))
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}

// WriteTo dumps the retained events, one per line.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range t.Events() {
		m, err := fmt.Fprintln(w, e)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Reset discards all retained events (the filter stays).
func (t *Tracer) Reset() {
	t.ring = t.ring[:0]
	t.next = 0
	t.wrapped = false
	t.dropped = 0
}
