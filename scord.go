// Package scord is a from-scratch reproduction of "ScoRD: A Scoped Race
// Detector for GPUs" (Kamath, George, Basu — ISCA 2020) as a Go library.
//
// It bundles three things:
//
//   - A deterministic cycle/event-level GPU simulator (streaming
//     multiprocessors with non-coherent L1 caches, a banked shared L2,
//     GDDR5-timed DRAM channels, and an SM<->L2 interconnect) that
//     enforces an HRF-style scoped memory model, with kernels written as
//     Go functions executed at warp granularity.
//
//   - The ScoRD hardware race detector: per-word metadata with the
//     paper's Figure 7 layout, a fence file, per-warp lock tables that
//     infer lock/unlock from atomicCAS/fence/atomicExch patterns, 16-bit
//     lock bloom filters, the preliminary checks of Table III, the race
//     conditions of Table IV, and the direct-mapped software metadata
//     cache that cuts memory overhead from 200% to 12.5%.
//
//   - The ScoR benchmark suite: seven applications and thirty-two
//     microbenchmarks exercising scoped synchronization, each with
//     configurable race injections, plus a harness that regenerates every
//     table and figure of the paper's evaluation.
//
// Quick start:
//
//	cfg := scord.DefaultConfig().WithDetector(scord.ModeCached)
//	dev, _ := scord.NewDevice(cfg)
//	x := dev.Alloc("counter", 1)
//	dev.Launch("inc", 2, 32, func(c *scord.Ctx) {
//	    c.AtomicAdd(x, 1, scord.ScopeBlock) // insufficient scope!
//	})
//	for _, r := range dev.Races() {
//	    fmt.Println(dev.DescribeRecord(r))
//	}
package scord

import (
	"scord/internal/config"
	"scord/internal/core"
	"scord/internal/gpu"
	"scord/internal/mem"
)

// Core simulation types.
type (
	// Device is a simulated GPU.
	Device = gpu.Device
	// Ctx is the per-warp kernel execution context.
	Ctx = gpu.Ctx
	// Kernel is a GPU kernel body, run once per warp.
	Kernel = gpu.Kernel
	// Config is the hardware + detector configuration.
	Config = config.Config
	// DetectorConfig holds the race-detector options.
	DetectorConfig = config.Detector
	// Addr is a device memory byte address.
	Addr = mem.Addr
	// Scope is a synchronization scope (block or device).
	Scope = core.Scope
	// RaceRecord is one detected race.
	RaceRecord = core.Record
	// RaceKind classifies a detected race.
	RaceKind = core.RaceKind
)

// Synchronization scopes.
const (
	ScopeBlock  = core.ScopeBlock
	ScopeDevice = core.ScopeDevice
)

// Detector modes.
const (
	// ModeOff disables detection (the baseline all figures normalize to).
	ModeOff = config.ModeOff
	// ModeFull4B is the paper's base design: full per-word metadata.
	ModeFull4B = config.ModeFull4B
	// ModeCached is ScoRD: the software-cached metadata design.
	ModeCached = config.ModeCached
	// ModeGran8B tracks at 8-byte granularity (Table VII).
	ModeGran8B = config.ModeGran8B
	// ModeGran16B tracks at 16-byte granularity (Table VII).
	ModeGran16B = config.ModeGran16B
)

// Race kinds (Table IV of the paper).
const (
	RaceMissingBlockFence  = core.RaceMissingBlockFence
	RaceMissingDeviceFence = core.RaceMissingDeviceFence
	RaceNotStrong          = core.RaceNotStrong
	RaceScopedAtomic       = core.RaceScopedAtomic
	RaceMissingLockLoad    = core.RaceMissingLockLoad
	RaceMissingLockStore   = core.RaceMissingLockStore
	RaceDivergedWarp       = core.RaceDivergedWarp
)

// DefaultConfig returns the paper's Table V hardware configuration with
// detection off.
func DefaultConfig() Config { return config.Default() }

// LowMemoryConfig returns the constrained memory preset of Figure 11.
func LowMemoryConfig() Config { return config.LowMemory() }

// HighMemoryConfig returns the generous memory preset of Figure 11.
func HighMemoryConfig() Config { return config.HighMemory() }

// NewDevice builds a simulated GPU.
func NewDevice(cfg Config) (*Device, error) { return gpu.New(cfg) }
