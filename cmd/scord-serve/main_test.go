package main

import (
	"strings"
	"testing"
)

// TestServeGracefulShutdown: with the interrupt already pending, the
// server starts, prints its bound address, drains and exits 0 — the
// clean supervisor-visible shutdown path.
func TestServeGracefulShutdown(t *testing.T) {
	ch := make(chan struct{})
	close(ch)
	testInterrupt = ch
	t.Cleanup(func() { testInterrupt = nil })

	var out, errOut strings.Builder
	code := run([]string{"-addr", "127.0.0.1:0"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "scord-serve listening on http://127.0.0.1:") {
		t.Errorf("stdout missing listen line:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "drained and stopped cleanly") {
		t.Errorf("stderr missing clean-drain log:\n%s", errOut.String())
	}
}

// TestLoadTestRun: the built-in load test records a trace, hammers the
// in-process server with concurrent replays, triggers the mid-run
// graceful drain, and reports zero dropped accepted jobs.
func TestLoadTestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("load test records a trace and replays it dozens of times")
	}
	var out, errOut strings.Builder
	code := run([]string{
		"-addr", "127.0.0.1:0",
		"-shards", "2", "-workers", "2", "-queue", "8",
		"-loadtest",
		"-loadtest-requests", "60",
		"-loadtest-concurrency", "8",
		"-loadtest-detector", "scord",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	got := out.String()
	for _, want := range []string{"loadtest: 60 requests", "dropped=0", "throughput", "latency p50="} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "graceful drain triggered") {
		t.Errorf("report missing drain line:\n%s", got)
	}
}
