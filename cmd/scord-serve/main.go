// Command scord-serve runs race detection as a long-running replay
// service. Clients upload an SCTR trace once (validated and
// content-addressed on admission) and replay it under any detector set
// many times over HTTP; identical requests are served from a result
// cache without replaying. The replay output is byte-identical to
// `scord-replay replay` on the same trace.
//
// Usage:
//
//	scord-serve                                  # serve on 127.0.0.1:9152
//	scord-serve -addr 127.0.0.1:0                # free port, printed on stdout
//	scord-serve -loadtest -loadtest-requests 200 # built-in load test + report
//
// API:
//
//	POST /v1/traces            upload an SCTR trace (body = raw bytes)
//	GET  /v1/traces            list stored trace IDs
//	POST /v1/replay            {"trace","detector","mode","no_cache"}
//	GET  /healthz, /statusz    health and component status
//	GET  /metrics, /debug/...  Prometheus, expvar, pprof
//
// On SIGINT/SIGTERM the server drains gracefully: intake stops (new
// requests get 503), every accepted replay job runs to completion, then
// the listener shuts down and the process exits 0. A second signal
// exits immediately.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"scord/internal/config"
	"scord/internal/harness"
	"scord/internal/obs"
	"scord/internal/scor"
	"scord/internal/scor/micro"
	"scord/internal/serve"
	"scord/internal/version"
)

// exitInterrupted is the exit code when a drain was forced mid-work (a
// second signal, or a failed shutdown); a clean signal-triggered drain
// exits 0, as supervisors expect of a service.
const exitInterrupted = 130

// testInterrupt, when non-nil, substitutes for OS signal delivery so
// tests can exercise the drain path deterministically.
var testInterrupt <-chan struct{}

// shutdownOnSignal returns a channel that closes on the first SIGINT or
// SIGTERM; a second signal exits immediately.
func shutdownOnSignal(logger *slog.Logger) <-chan struct{} {
	if testInterrupt != nil {
		return testInterrupt
	}
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		sig := <-sigs
		logger.Warn("signal received; draining (second signal exits immediately)", "signal", sig)
		close(done)
		<-sigs
		os.Exit(exitInterrupted)
	}()
	return done
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:9152", "listen address (port 0 picks a free port, printed on stdout)")
		shards    = fs.Int("shards", 4, "worker-pool shards (tenant isolation domains)")
		workers   = fs.Int("workers", 2, "replay workers per shard")
		queue     = fs.Int("queue", 64, "queued jobs per shard before 429 backpressure")
		maxUpload = fs.Int64("max-upload-bytes", 64<<20, "largest accepted trace upload")
		maxStore  = fs.Int64("max-store-bytes", 256<<20, "total raw trace bytes retained")
		cacheN    = fs.Int("cache", 256, "replay outcomes kept in the result cache")

		loadtest   = fs.Bool("loadtest", false, "run the built-in load test against this process and exit")
		ltRequests = fs.Int("loadtest-requests", 200, "replay requests to send")
		ltConc     = fs.Int("loadtest-concurrency", 16, "concurrent client goroutines")
		ltTenants  = fs.Int("loadtest-tenants", 4, "distinct tenants to spread requests across")
		ltDetector = fs.String("loadtest-detector", "all", "detector set each request replays")
		ltDrainAt  = fs.Int("loadtest-drain-at", -1, "trigger the graceful drain after N responses (-1: half the requests, 0: never)")
		ltTrace    = fs.String("loadtest-trace", "", "SCTR trace file to replay (default: record fence.racey.cross-none in-process)")
		showVer    = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVer {
		fmt.Fprintln(stdout, "scord-serve", version.String())
		return 0
	}
	logger := slog.New(slog.NewTextHandler(stderr, nil))

	s := serve.New(serve.Config{
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		MaxUploadBytes:  *maxUpload,
		MaxStoreBytes:   *maxStore,
		CacheEntries:    *cacheN,
		Logger:          logger,
	})
	srv, err := obs.StartServerMux(*addr, s.Handler())
	if err != nil {
		fmt.Fprintln(stderr, "scord-serve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "scord-serve listening on http://%s\n", srv.Addr())
	logger.Info("serving", "addr", srv.Addr(), "shards", *shards, "workers", s.Pool().Workers(), "queue", *queue)

	if *loadtest {
		drainAt := *ltDrainAt
		if drainAt < 0 {
			drainAt = *ltRequests / 2
		}
		code := runLoadTest(s, "http://"+srv.Addr(), *ltTrace, serve.LoadTestOpts{
			Requests:    *ltRequests,
			Concurrency: *ltConc,
			Tenants:     *ltTenants,
			Detector:    *ltDetector,
			NoCache:     true,
			DrainAt:     drainAt,
		}, stdout, stderr)
		if err := srv.Close(); err != nil {
			fmt.Fprintln(stderr, "scord-serve: close:", err)
			if code == 0 {
				code = 1
			}
		}
		return code
	}

	<-shutdownOnSignal(logger)
	s.Drain()
	if err := srv.Close(); err != nil {
		fmt.Fprintln(stderr, "scord-serve: close:", err)
		return exitInterrupted
	}
	logger.Info("drained and stopped cleanly")
	return 0
}

// loadTestTrace returns the raw trace to hammer the server with: the
// given file, or a freshly recorded fence microbenchmark.
func loadTestTrace(path string, stderr io.Writer) ([]byte, error) {
	if path != "" {
		return os.ReadFile(path)
	}
	var bench scor.Benchmark
	for _, b := range micro.Benchmarks() {
		if b.Name() == "fence.racey.cross-none" {
			bench = b
			break
		}
	}
	if bench == nil {
		return nil, fmt.Errorf("fence.racey.cross-none not registered")
	}
	fmt.Fprintln(stderr, "scord-serve: recording fence.racey.cross-none for the load test")
	var buf bytes.Buffer
	err := harness.RecordBenchmark(harness.Options{Jobs: 1}, config.Default(),
		"loadtest", bench, config.ModeFull4B, nil, &buf)
	return buf.Bytes(), err
}

func runLoadTest(s *serve.Server, baseURL, tracePath string, opt serve.LoadTestOpts, stdout, stderr io.Writer) int {
	raw, err := loadTestTrace(tracePath, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "scord-serve: loadtest trace:", err)
		return 1
	}
	resp, err := http.Post(baseURL+"/v1/traces", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintln(stderr, "scord-serve: upload:", err)
		return 1
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "scord-serve: upload status %d: %s\n", resp.StatusCode, body)
		return 1
	}
	var up struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &up); err != nil {
		fmt.Fprintln(stderr, "scord-serve: upload response:", err)
		return 1
	}

	rep, err := serve.LoadTest(s, baseURL, up.ID, opt)
	if err != nil {
		fmt.Fprintln(stderr, "scord-serve: loadtest:", err)
		return 1
	}
	rep.WriteText(stdout)
	if rep.Dropped > 0 || rep.Failed > 0 {
		fmt.Fprintf(stderr, "scord-serve: loadtest FAILED: dropped=%d failed=%d\n", rep.Dropped, rep.Failed)
		return 1
	}
	return 0
}
