package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExitsCleanly(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "fence.racey.cross-none") {
		t.Errorf("-list output missing microbenchmarks:\n%s", out.String())
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bench", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown benchmark "nope"`) {
		t.Fatalf("stderr %q missing diagnostic", errOut.String())
	}
}

// TestPerfettoFlagWritesValidTrace: `scord -perfetto out.json` on a racey
// microbenchmark produces trace_event JSON that parses, names warp
// tracks, spans the kernel, and carries at least one race instant — the
// whole export path from tracer ring to file, through the CLI.
func TestPerfettoFlagWritesValidTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut strings.Builder
	code := run([]string{"-bench", "fence.racey.cross-none", "-mode", "scord", "-perfetto", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "race(s) detected") {
		t.Errorf("stdout lost the normal report:\n%s", out.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Dur  uint64            `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("perfetto output does not parse: %v", err)
	}
	var kernelSpans, threadNames, races int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "X" && e.Name != "barrier-wait":
			kernelSpans++
			if e.Dur == 0 {
				t.Errorf("kernel span %q has zero duration", e.Name)
			}
		case e.Ph == "M" && e.Name == "thread_name":
			threadNames++
		case e.Ph == "i" && e.Name == "race":
			races++
			if e.Args["addr"] == "" {
				t.Error("race instant missing addr arg")
			}
		}
	}
	if kernelSpans == 0 {
		t.Error("no kernel spans in perfetto trace")
	}
	if threadNames < 2 {
		t.Errorf("expected kernel + warp thread_name metadata, got %d", threadNames)
	}
	if races == 0 {
		t.Error("no race instants in perfetto trace from a racey micro")
	}
}
