// Command scord runs one ScoR benchmark on the simulated GPU, optionally
// with race injections and a chosen detector design, and prints the
// detected races and simulation statistics.
//
// Usage:
//
//	scord -list
//	scord -bench GCOL -mode scord -inject own-atomic,steal-atomic
//	scord -bench UTS -mode base
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"scord/internal/config"
	"scord/internal/gpu"
	"scord/internal/mem"
	"scord/internal/scor"
	"scord/internal/scor/micro"
	"scord/internal/stats"
	"scord/internal/trace"
)

// jsonReport is the machine-readable output of -json.
type jsonReport struct {
	Benchmark  string           `json:"benchmark"`
	Detector   string           `json:"detector"`
	Injections []string         `json:"injections,omitempty"`
	Seed       int64            `json:"seed"`
	Stats      *stats.Stats     `json:"stats"`
	Kernels    []jsonKernel     `json:"kernels"`
	Races      []jsonRace       `json:"races"`
	Match      *jsonMatchResult `json:"match,omitempty"`
}

type jsonKernel struct {
	Name    string `json:"name"`
	Blocks  int    `json:"blocks"`
	Threads int    `json:"threads"`
	Cycles  uint64 `json:"cycles"`
	MemOps  uint64 `json:"memOps"`
}

type jsonRace struct {
	Kind      string `json:"kind"`
	Scope     string `json:"scope"`
	Location  string `json:"location"`
	Site      string `json:"site,omitempty"`
	PrevBlock int    `json:"prevBlock"`
	PrevWarp  int    `json:"prevWarp"`
	CurBlock  int    `json:"curBlock"`
	CurWarp   int    `json:"curWarp"`
	Count     int    `json:"count"`
}

type jsonMatchResult struct {
	Expected int      `json:"expected"`
	Caught   []string `json:"caught"`
	Missed   []string `json:"missed,omitempty"`
}

func allBenchmarks() []scor.Benchmark {
	return append(scor.Apps(), micro.Benchmarks()...)
}

func parseMode(s string) (config.DetectorMode, error) {
	switch s {
	case "off":
		return config.ModeOff, nil
	case "base":
		return config.ModeFull4B, nil
	case "scord":
		return config.ModeCached, nil
	case "gran8":
		return config.ModeGran8B, nil
	case "gran16":
		return config.ModeGran16B, nil
	}
	return 0, fmt.Errorf("unknown mode %q (off|base|scord|gran8|gran16)", s)
}

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to run (see -list)")
		mode      = flag.String("mode", "scord", "detector: off|base|scord|gran8|gran16")
		inject    = flag.String("inject", "", "comma-separated race injections ('all' for every one)")
		list      = flag.Bool("list", false, "list benchmarks and their injections")
		seed      = flag.Int64("seed", 1, "simulation seed")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable JSON report")
		traceN    = flag.Int("trace", 0, "dump the last N execution events after the run")
		scale     = flag.Int("scale", 1, "multiply the benchmark's input size (device memory scales too)")
		explain   = flag.Bool("explain", false, "print a diagnosis and fix suggestion per race")
	)
	flag.Parse()

	if *list {
		for _, b := range allBenchmarks() {
			if inj := b.Injections(); len(inj) > 0 {
				fmt.Printf("%-40s injections: %s\n", b.Name(), strings.Join(inj, ","))
			} else {
				fmt.Printf("%-40s\n", b.Name())
			}
		}
		return
	}
	if *benchName == "" {
		fmt.Fprintln(os.Stderr, "scord: -bench required (or -list)")
		os.Exit(2)
	}

	var bench scor.Benchmark
	for _, b := range allBenchmarks() {
		if strings.EqualFold(b.Name(), *benchName) {
			bench = b
			break
		}
	}
	if bench == nil {
		fmt.Fprintf(os.Stderr, "scord: unknown benchmark %q\n", *benchName)
		os.Exit(2)
	}

	dm, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scord:", err)
		os.Exit(2)
	}

	var active []string
	switch *inject {
	case "":
	case "all":
		active = bench.Injections()
	default:
		active = strings.Split(*inject, ",")
	}

	if err := scor.Scale(bench, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "scord:", err)
		os.Exit(2)
	}
	cfg := config.Default().WithDetector(dm)
	cfg.Seed = *seed
	cfg.DeviceMemBytes *= *scale
	dev, err := gpu.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scord:", err)
		os.Exit(1)
	}
	var tr *trace.Tracer
	if *traceN > 0 {
		tr = trace.New(*traceN)
		dev.AttachTracer(tr)
	}
	if err := bench.Run(dev, active); err != nil {
		fmt.Fprintf(os.Stderr, "scord: %s failed: %v\n", bench.Name(), err)
		os.Exit(1)
	}

	if *jsonOut {
		emitJSON(dev, bench, dm, active, *seed)
		return
	}

	st := dev.Stats()
	fmt.Printf("benchmark  %s\n", bench.Name())
	fmt.Printf("detector   %v\n", dm)
	fmt.Printf("injections %v\n", active)
	fmt.Printf("cycles     %d\n", st.Cycles)
	fmt.Printf("mem ops    %d (atomics %d, fences %d, barriers %d)\n",
		st.MemOps, st.Atomics, st.Fences, st.Barriers)
	fmt.Printf("L1 hit     %.1f%%\n", 100*st.L1HitRate())
	fmt.Printf("DRAM       %d data + %d metadata accesses\n",
		st.DRAMDataAccesses, st.DRAMMetaAccesses)
	if dm != config.ModeOff {
		fmt.Printf("checks     %d (%d trivially race-free)\n", st.DetectorChecks, st.DetectorPrelimOK)
	}

	recs := dev.Races()
	fmt.Printf("\n%d unique race(s) detected\n", len(recs))
	for _, r := range recs {
		if *explain {
			fmt.Println(dev.ExplainRecord(r))
		} else {
			fmt.Println("  ", dev.DescribeRecord(r))
		}
	}
	if len(active) > 0 {
		res := scor.MatchRaces(dev, bench.ExpectedRaces(active))
		fmt.Printf("\nexpected %d unique race(s): caught %v", res.Expected, res.Caught)
		if len(res.Missed) > 0 {
			fmt.Printf(", MISSED %v", res.Missed)
		}
		fmt.Println()
	}

	if tr != nil {
		fmt.Printf("\nlast %d execution events:\n", tr.Len())
		if _, err := tr.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "scord:", err)
			os.Exit(1)
		}
	}
}

func emitJSON(dev *gpu.Device, bench scor.Benchmark, dm config.DetectorMode, active []string, seed int64) {
	rep := jsonReport{
		Benchmark:  bench.Name(),
		Detector:   dm.String(),
		Injections: active,
		Seed:       seed,
		Stats:      dev.Stats(),
	}
	for _, k := range dev.KernelLog() {
		rep.Kernels = append(rep.Kernels, jsonKernel{
			Name: k.Name, Blocks: k.Blocks, Threads: k.Threads,
			Cycles: k.Cycles, MemOps: k.Stats.MemOps,
		})
	}
	for _, r := range dev.Races() {
		scope := "device"
		if r.SameBlock {
			scope = "block"
		}
		rep.Races = append(rep.Races, jsonRace{
			Kind:      r.Kind.String(),
			Scope:     scope,
			Location:  dev.Mem().Describe(mem.Addr(r.Addr)),
			Site:      r.Site,
			PrevBlock: r.PrevBlock,
			PrevWarp:  r.PrevWarp,
			CurBlock:  r.CurBlock,
			CurWarp:   r.CurWarp,
			Count:     r.Count,
		})
	}
	if len(active) > 0 {
		res := scor.MatchRaces(dev, bench.ExpectedRaces(active))
		rep.Match = &jsonMatchResult{Expected: res.Expected, Caught: res.Caught, Missed: res.Missed}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "scord:", err)
		os.Exit(1)
	}
}
