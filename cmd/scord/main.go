// Command scord runs one ScoR benchmark on the simulated GPU, optionally
// with race injections and a chosen detector design, and prints the
// detected races and simulation statistics.
//
// Usage:
//
//	scord -list
//	scord -bench GCOL -mode scord -inject own-atomic,steal-atomic
//	scord -bench UTS -mode base
//	scord -bench fence.racey.cross-none -perfetto trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"scord/internal/config"
	"scord/internal/gpu"
	"scord/internal/mem"
	"scord/internal/obs"
	"scord/internal/obs/tracing"
	"scord/internal/scor"
	"scord/internal/scor/micro"
	"scord/internal/stats"
	"scord/internal/trace"
	"scord/internal/tracefile"
	"scord/internal/version"
)

// perfettoTraceCap is the tracer ring size used when -perfetto is given
// without an explicit -trace N: large enough to hold every event of the
// bundled benchmarks at default scale, so spans are not truncated.
const perfettoTraceCap = 1 << 16

// jsonReport is the machine-readable output of -json.
type jsonReport struct {
	Benchmark  string           `json:"benchmark"`
	Detector   string           `json:"detector"`
	Injections []string         `json:"injections,omitempty"`
	Seed       int64            `json:"seed"`
	Stats      *stats.Stats     `json:"stats"`
	Kernels    []jsonKernel     `json:"kernels"`
	Races      []jsonRace       `json:"races"`
	Match      *jsonMatchResult `json:"match,omitempty"`
}

type jsonKernel struct {
	Name    string `json:"name"`
	Blocks  int    `json:"blocks"`
	Threads int    `json:"threads"`
	Cycles  uint64 `json:"cycles"`
	MemOps  uint64 `json:"memOps"`
}

type jsonRace struct {
	Kind      string `json:"kind"`
	Scope     string `json:"scope"`
	Location  string `json:"location"`
	Site      string `json:"site,omitempty"`
	PrevBlock int    `json:"prevBlock"`
	PrevWarp  int    `json:"prevWarp"`
	CurBlock  int    `json:"curBlock"`
	CurWarp   int    `json:"curWarp"`
	Count     int    `json:"count"`
}

type jsonMatchResult struct {
	Expected int      `json:"expected"`
	Caught   []string `json:"caught"`
	Missed   []string `json:"missed,omitempty"`
}

func allBenchmarks() []scor.Benchmark {
	return append(scor.Apps(), micro.Benchmarks()...)
}

func parseMode(s string) (config.DetectorMode, error) {
	return config.ParseMode(s)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "", "benchmark to run (see -list)")
		mode      = fs.String("mode", "scord", "detector: off|base|scord|gran8|gran16")
		inject    = fs.String("inject", "", "comma-separated race injections ('all' for every one)")
		list      = fs.Bool("list", false, "list benchmarks and their injections")
		seed      = fs.Int64("seed", 1, "simulation seed")
		jsonOut   = fs.Bool("json", false, "emit a machine-readable JSON report")
		traceN    = fs.Int("trace", 0, "dump the last N execution events after the run")
		scale     = fs.Int("scale", 1, "multiply the benchmark's input size (device memory scales too)")
		explain   = fs.Bool("explain", false, "print a diagnosis and fix suggestion per race")
		perfetto  = fs.String("perfetto", "", "write a Chrome/Perfetto trace_event JSON file of the run (implies event tracing)")
		phases    = fs.Bool("phases", false, "print the cycle-attribution breakdown by simulator phase")
		spanJSON  = fs.String("span-json", "", "write the cycle-domain span trace (scord-spans/1 JSON) to this file")
		showVer   = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVer {
		fmt.Fprintln(stdout, "scord", version.String())
		return 0
	}
	logger := slog.New(slog.NewTextHandler(stderr, nil))

	if *list {
		for _, b := range allBenchmarks() {
			if inj := b.Injections(); len(inj) > 0 {
				fmt.Fprintf(stdout, "%-40s injections: %s\n", b.Name(), strings.Join(inj, ","))
			} else {
				fmt.Fprintf(stdout, "%-40s\n", b.Name())
			}
		}
		return 0
	}
	if *benchName == "" {
		fmt.Fprintln(stderr, "scord: -bench required (or -list)")
		return 2
	}

	var bench scor.Benchmark
	for _, b := range allBenchmarks() {
		if strings.EqualFold(b.Name(), *benchName) {
			bench = b
			break
		}
	}
	if bench == nil {
		fmt.Fprintf(stderr, "scord: unknown benchmark %q\n", *benchName)
		return 2
	}

	dm, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(stderr, "scord:", err)
		return 2
	}

	var active []string
	switch *inject {
	case "":
	case "all":
		active = bench.Injections()
	default:
		active = strings.Split(*inject, ",")
	}

	if err := scor.Scale(bench, *scale); err != nil {
		fmt.Fprintln(stderr, "scord:", err)
		return 2
	}
	cfg := config.Default().WithDetector(dm)
	cfg.Seed = *seed
	cfg.DeviceMemBytes *= *scale
	dev, err := gpu.New(cfg)
	if err != nil {
		logger.Error("building device", "err", err)
		return 1
	}
	var tr *trace.Tracer
	if *traceN > 0 || *perfetto != "" {
		n := *traceN
		if n <= 0 {
			n = perfettoTraceCap
		}
		tr = trace.New(n)
		dev.AttachTracer(tr)
	}
	var spans *tracing.Builder
	if *spanJSON != "" {
		// The identity parts mirror tracing.FromOps, so the span JSON of
		// a live run is byte-identical to the one rebuilt from a recorded
		// trace of the same configuration.
		spans = tracing.NewBuilder(bench.Name(),
			fmt.Sprintf("%016x", tracefile.HashConfig(cfg)), fmt.Sprintf("%d", cfg.Seed))
		dev.SetOpSink(spans)
	}
	if err := bench.Run(dev, active); err != nil {
		logger.Error("benchmark failed", "benchmark", bench.Name(), "err", err)
		return 1
	}

	if *jsonOut {
		if err := emitJSON(stdout, dev, bench, dm, active, *seed); err != nil {
			logger.Error("encoding json report", "err", err)
			return 1
		}
	} else {
		renderText(stdout, dev, bench, dm, active, *explain)
		if *phases {
			fmt.Fprintf(stdout, "\ncycle attribution by phase:\n")
			dev.Phases().WriteTable(stdout, dev.Cycles())
		}
		if *traceN > 0 {
			fmt.Fprintf(stdout, "\nlast %d execution events:\n", tr.Len())
			if _, err := tr.WriteTo(stdout); err != nil {
				logger.Error("dumping trace", "err", err)
				return 1
			}
		}
	}

	if spans != nil {
		spans.Finish(dev.Cycles())
		f, err := os.Create(*spanJSON)
		if err != nil {
			logger.Error("creating span trace", "err", err)
			return 1
		}
		if err := spans.Tracer().WriteJSON(f); err != nil {
			f.Close()
			os.Remove(*spanJSON)
			logger.Error("writing span trace", "err", err)
			return 1
		}
		if err := f.Close(); err != nil {
			logger.Error("writing span trace", "err", err)
			return 1
		}
		logger.Info("wrote span trace", "path", *spanJSON,
			"trace_id", spans.Tracer().TraceID().String(), "spans", spans.Tracer().Len())
	}

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			logger.Error("creating perfetto trace", "err", err)
			return 1
		}
		if err := obs.WritePerfetto(f, tr.Events()); err != nil {
			f.Close()
			os.Remove(*perfetto)
			logger.Error("writing perfetto trace", "err", err)
			return 1
		}
		if err := f.Close(); err != nil {
			logger.Error("writing perfetto trace", "err", err)
			return 1
		}
		logger.Info("wrote perfetto trace", "path", *perfetto, "events", tr.Len())
	}
	return 0
}

func renderText(w io.Writer, dev *gpu.Device, bench scor.Benchmark, dm config.DetectorMode, active []string, explain bool) {
	st := dev.Stats()
	fmt.Fprintf(w, "benchmark  %s\n", bench.Name())
	fmt.Fprintf(w, "detector   %v\n", dm)
	fmt.Fprintf(w, "injections %v\n", active)
	fmt.Fprintf(w, "cycles     %d\n", st.Cycles)
	fmt.Fprintf(w, "mem ops    %d (atomics %d, fences %d, barriers %d)\n",
		st.MemOps, st.Atomics, st.Fences, st.Barriers)
	fmt.Fprintf(w, "L1 hit     %.1f%%\n", 100*st.L1HitRate())
	fmt.Fprintf(w, "DRAM       %d data + %d metadata accesses\n",
		st.DRAMDataAccesses, st.DRAMMetaAccesses)
	if dm != config.ModeOff {
		fmt.Fprintf(w, "checks     %d (%d trivially race-free)\n", st.DetectorChecks, st.DetectorPrelimOK)
	}

	recs := dev.Races()
	fmt.Fprintf(w, "\n%d unique race(s) detected\n", len(recs))
	for _, r := range recs {
		if explain {
			fmt.Fprintln(w, dev.ExplainRecord(r))
		} else {
			fmt.Fprintln(w, "  ", dev.DescribeRecord(r))
		}
	}
	if len(active) > 0 {
		res := scor.MatchRaces(dev, bench.ExpectedRaces(active))
		fmt.Fprintf(w, "\nexpected %d unique race(s): caught %v", res.Expected, res.Caught)
		if len(res.Missed) > 0 {
			fmt.Fprintf(w, ", MISSED %v", res.Missed)
		}
		fmt.Fprintln(w)
	}
}

func emitJSON(w io.Writer, dev *gpu.Device, bench scor.Benchmark, dm config.DetectorMode, active []string, seed int64) error {
	rep := jsonReport{
		Benchmark:  bench.Name(),
		Detector:   dm.String(),
		Injections: active,
		Seed:       seed,
		Stats:      dev.Stats(),
	}
	for _, k := range dev.KernelLog() {
		rep.Kernels = append(rep.Kernels, jsonKernel{
			Name: k.Name, Blocks: k.Blocks, Threads: k.Threads,
			Cycles: k.Cycles, MemOps: k.Stats.MemOps,
		})
	}
	for _, r := range dev.Races() {
		scope := "device"
		if r.SameBlock {
			scope = "block"
		}
		rep.Races = append(rep.Races, jsonRace{
			Kind:      r.Kind.String(),
			Scope:     scope,
			Location:  dev.Mem().Describe(mem.Addr(r.Addr)),
			Site:      r.Site,
			PrevBlock: r.PrevBlock,
			PrevWarp:  r.PrevWarp,
			CurBlock:  r.CurBlock,
			CurWarp:   r.CurWarp,
			Count:     r.Count,
		})
	}
	if len(active) > 0 {
		res := scor.MatchRaces(dev, bench.ExpectedRaces(active))
		rep.Match = &jsonMatchResult{Expected: res.Expected, Caught: res.Caught, Missed: res.Missed}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
