package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunInterrupted: with an interrupt pending, the harness dispatches
// no simulations, no CSV or metrics artifacts appear, and the run exits
// with the interrupted status.
func TestRunInterrupted(t *testing.T) {
	ch := make(chan struct{})
	close(ch)
	testInterrupt = ch
	t.Cleanup(func() { testInterrupt = nil })

	csvDir := filepath.Join(t.TempDir(), "csv")
	metricsDir := filepath.Join(t.TempDir(), "metrics")
	var out, errOut strings.Builder
	code := run([]string{"-only", "table8", "-jobs", "2", "-csv", csvDir, "-metrics", metricsDir}, &out, &errOut)
	if code != exitInterrupted {
		t.Fatalf("exit code = %d, want %d; stderr:\n%s", code, exitInterrupted, errOut.String())
	}
	for _, dir := range []string{csvDir, metricsDir} {
		files, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(files) > 0 {
			t.Errorf("partial artifacts written to %s after interrupt: %v", dir, files)
		}
	}
	if !strings.Contains(errOut.String(), "interrupted") {
		t.Errorf("stderr missing interruption diagnostic:\n%s", errOut.String())
	}
}
