package main

import (
	"strings"
	"testing"
)

// Regression: an unknown -only value must be rejected up front with exit
// code 2, before any simulation runs (a typo used to cost a full
// evaluation pass of every experiment first).
func TestUnknownOnlyRejectedBeforeRunning(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-only", "fig99"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if out.Len() != 0 {
		t.Fatalf("stdout not empty: %q — experiments ran before the rejection", out.String())
	}
	if !strings.Contains(errOut.String(), `unknown experiment "fig99"`) {
		t.Fatalf("stderr %q missing unknown-experiment diagnostic", errOut.String())
	}
	if !strings.Contains(errOut.String(), "fig8") {
		t.Fatalf("stderr %q does not list the valid experiment names", errOut.String())
	}
}

func TestBadJobsRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-jobs", "0", "-only", "fig8"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-jobs must be >= 1") {
		t.Fatalf("stderr %q missing -jobs diagnostic", errOut.String())
	}
}
