package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// Regression: an unknown -only value must be rejected up front with exit
// code 2, before any simulation runs (a typo used to cost a full
// evaluation pass of every experiment first).
func TestUnknownOnlyRejectedBeforeRunning(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-only", "fig99"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if out.Len() != 0 {
		t.Fatalf("stdout not empty: %q — experiments ran before the rejection", out.String())
	}
	if !strings.Contains(errOut.String(), `unknown experiment "fig99"`) {
		t.Fatalf("stderr %q missing unknown-experiment diagnostic", errOut.String())
	}
	if !strings.Contains(errOut.String(), "fig8") {
		t.Fatalf("stderr %q does not list the valid experiment names", errOut.String())
	}
}

func TestBadJobsRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-jobs", "0", "-only", "fig8"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-jobs must be >= 1") {
		t.Fatalf("stderr %q missing -jobs diagnostic", errOut.String())
	}
}

func TestVerboseQuietConflictRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-v", "-quiet", "-only", "table8"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "mutually exclusive") {
		t.Fatalf("stderr %q missing conflict diagnostic", errOut.String())
	}
}

func httpGet(t *testing.T, url string) (string, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// TestObsServesWhileRunInFlight: with -obs-addr, the telemetry endpoint
// answers Prometheus scrapes and pprof requests while simulations are
// still executing. A poller started from the obsServerStarted hook
// scrapes /metrics until it observes queued jobs, then hits /debug/vars
// and /debug/pprof/cmdline — all strictly before run() returns, since the
// server is torn down when run() exits.
func TestObsServesWhileRunInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the table8 micro suite")
	}
	type scrape struct {
		metrics string
		vars    string
		pprof   string
		err     error
	}
	got := make(chan scrape, 1)
	obsServerStarted = func(addr string) {
		go func() {
			var s scrape
			base := "http://" + addr
			jobsSeen := regexp.MustCompile(`(?m)^scord_jobs_total [1-9]`)
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				body, err := httpGet(t, base+"/metrics")
				if err != nil {
					s.err = err
					break
				}
				if jobsSeen.MatchString(body) {
					s.metrics = body
					s.vars, s.err = httpGet(t, base+"/debug/vars")
					if s.err == nil {
						s.pprof, s.err = httpGet(t, base+"/debug/pprof/cmdline")
					}
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			got <- s
		}()
	}
	defer func() { obsServerStarted = nil }()

	var out, errOut strings.Builder
	code := run([]string{"-only", "table8", "-jobs", "2", "-obs-addr", "127.0.0.1:0"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, errOut.String())
	}
	s := <-got
	if s.err != nil {
		t.Fatalf("scraping mid-run: %v", s.err)
	}
	if s.metrics == "" {
		t.Fatal("poller never observed queued jobs on /metrics while the run was in flight")
	}
	for _, want := range []string{"scord_workers 2", "scord_jobs_running", "scord_job_sim_cycles", `scord_job_state{job="table8/`} {
		if !strings.Contains(s.metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, s.metrics)
		}
	}
	if !strings.Contains(s.vars, `"scord"`) {
		t.Errorf("/debug/vars missing scord expvar: %s", s.vars)
	}
	if s.pprof == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
	if !strings.Contains(errOut.String(), "telemetry server listening") {
		t.Errorf("stderr missing server startup log:\n%s", errOut.String())
	}
}

// TestMetricsAndProfilesWritten: one -quiet run produces the sampled
// metrics CSV/JSON artifacts and the CPU/heap profiles, while keeping
// stderr free of info-level telemetry.
func TestMetricsAndProfilesWritten(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the table8 micro suite")
	}
	dir := t.TempDir()
	metricsDir := filepath.Join(dir, "metrics")
	cpuProf := filepath.Join(dir, "cpu.pprof")
	memProf := filepath.Join(dir, "mem.pprof")
	var out, errOut strings.Builder
	code := run([]string{
		"-only", "table8", "-jobs", "2", "-quiet",
		"-metrics", metricsDir, "-sample-every", "500",
		"-cpuprofile", cpuProf, "-memprofile", memProf,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, errOut.String())
	}
	if strings.Contains(errOut.String(), "experiment complete") {
		t.Errorf("-quiet run still logged info-level telemetry:\n%s", errOut.String())
	}

	csv, err := os.ReadFile(filepath.Join(metricsDir, "metrics.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "label,cycle,metric,value\n") {
		t.Errorf("metrics.csv header wrong: %q", string(csv[:min(len(csv), 60)]))
	}
	for _, want := range []string{"table8/", ",instructions,", ",sm0.instructions,", ",dram0.accesses,"} {
		if !strings.Contains(string(csv), want) {
			t.Errorf("metrics.csv missing %q", want)
		}
	}
	js, err := os.ReadFile(filepath.Join(metricsDir, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []struct {
			Label   string `json:"label"`
			Samples []struct {
				Cycle  uint64  `json:"cycle"`
				Metric string  `json:"metric"`
				Value  float64 `json:"value"`
			} `json:"samples"`
		} `json:"series"`
	}
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	if len(doc.Series) == 0 || len(doc.Series[0].Samples) == 0 {
		t.Fatal("metrics.json has no sampled series")
	}

	for _, p := range []string{cpuProf, memProf} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
