// Command scord-eval regenerates the ScoRD paper's evaluation: Tables VI,
// VII and VIII, the data series behind Figures 8, 9, 10 and 11, and the
// design-choice ablations of DESIGN.md.
//
// The ~450 device simulations behind the full evaluation are independent,
// so they run on a bounded worker pool (-jobs, default GOMAXPROCS).
// Results are collected in job-submission order: rendered tables and CSVs
// are byte-identical at any -jobs value. Deterministic experiment output
// goes to stdout; per-experiment timing telemetry goes to stderr.
//
// Usage:
//
//	scord-eval                      # run everything
//	scord-eval -only fig8           # one experiment
//	scord-eval -seed 7              # different workload seed
//	scord-eval -csv out/            # also write one CSV per experiment
//	scord-eval -jobs 1              # sequential run (same output)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"scord/internal/config"
	"scord/internal/harness"
)

// result is what every experiment produces: a rendered text table, and
// CSV rows for plotting.
type result interface {
	Render() string
	CSV() [][]string
}

type experiment struct {
	name string
	run  func(harness.Options) (result, error)
}

var experiments = []experiment{
	{"table6", func(o harness.Options) (result, error) { return harness.RunTable6(o) }},
	{"table7", func(o harness.Options) (result, error) { return harness.RunTable7(o) }},
	{"table8", func(o harness.Options) (result, error) { return harness.RunTable8(o) }},
	{"fig8", func(o harness.Options) (result, error) { return harness.RunFig8(o) }},
	{"fig9", func(o harness.Options) (result, error) { return harness.RunFig9(o) }},
	{"fig10", func(o harness.Options) (result, error) { return harness.RunFig10(o) }},
	{"fig11", func(o harness.Options) (result, error) { return harness.RunFig11(o) }},
	{"ablation-ratio", func(o harness.Options) (result, error) { return harness.RunAblationCacheRatio(o) }},
	{"ablation-inbox", func(o harness.Options) (result, error) { return harness.RunAblationInbox(o) }},
	{"ablation-rate", func(o harness.Options) (result, error) { return harness.RunAblationRate(o) }},
}

func experimentNames() string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return strings.Join(names, "|")
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord-eval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only   = fs.String("only", "", "run one experiment: "+experimentNames())
		seed   = fs.Int64("seed", 1, "simulation seed")
		csvDir = fs.String("csv", "", "directory to write one CSV per experiment (created if missing)")
		jobs   = fs.Int("jobs", runtime.GOMAXPROCS(0), "worker goroutines for independent simulations (output is identical at any value)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Reject an unknown -only value before running anything: a typo must
	// not cost a full evaluation pass first.
	if *only != "" {
		known := false
		for _, e := range experiments {
			if strings.EqualFold(*only, e.name) {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(stderr, "scord-eval: unknown experiment %q (choose from %s)\n", *only, experimentNames())
			return 2
		}
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "scord-eval: -jobs must be >= 1, got %d\n", *jobs)
		return 2
	}

	cfg := config.Default()
	cfg.Seed = *seed

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "scord-eval:", err)
			return 1
		}
	}

	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.name) {
			continue
		}
		rep := &harness.Report{}
		opt := harness.Options{Config: &cfg, Jobs: *jobs, Report: rep}
		start := time.Now()
		res, err := e.run(opt)
		if err != nil {
			fmt.Fprintf(stderr, "scord-eval: %s: %v\n", e.name, err)
			return 1
		}
		fmt.Fprintln(stdout, res.Render())
		// Timing telemetry goes to stderr so stdout stays byte-identical
		// across -jobs values and runs.
		fmt.Fprintf(stderr, "(%s: %d sims on %d workers in %.1fs — %.2fx speedup, %.0f%% utilization)\n",
			e.name, len(rep.Jobs()), rep.Workers(), time.Since(start).Seconds(),
			rep.Speedup(), 100*rep.Utilization())

		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.name+".csv")
			if err := harness.WriteCSVFile(path, res); err != nil {
				fmt.Fprintln(stderr, "scord-eval:", err)
				return 1
			}
		}
	}
	return 0
}
