// Command scord-eval regenerates the ScoRD paper's evaluation: Tables VI,
// VII and VIII, the data series behind Figures 8, 9, 10 and 11, and the
// design-choice ablations of DESIGN.md.
//
// The ~450 device simulations behind the full evaluation are independent,
// so they run on a bounded worker pool (-jobs, default GOMAXPROCS).
// Results are collected in job-submission order: rendered tables and CSVs
// are byte-identical at any -jobs value. Deterministic experiment output
// goes to stdout; logging and telemetry go to stderr (structured, gated
// by -v/-quiet) so stdout stays byte-identical across runs.
//
// Observability: -metrics samples every device's counters in the
// simulated-cycle domain and writes deterministic CSV/JSON series;
// -obs-addr serves live Prometheus /metrics, expvar and pprof while the
// run is in flight; -cpuprofile/-memprofile capture offline profiles.
//
// Usage:
//
//	scord-eval                      # run everything
//	scord-eval -only fig8           # one experiment
//	scord-eval -seed 7              # different workload seed
//	scord-eval -csv out/            # also write one CSV per experiment
//	scord-eval -jobs 1              # sequential run (same output)
//	scord-eval -metrics out/ -sample-every 5000
//	scord-eval -obs-addr 127.0.0.1:9151
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"scord/internal/config"
	"scord/internal/harness"
	"scord/internal/obs"
	"scord/internal/version"
)

// exitInterrupted is the exit code after a SIGINT/SIGTERM drain (128 +
// SIGINT, the conventional interrupted status).
const exitInterrupted = 130

// testInterrupt, when non-nil, substitutes for OS signal delivery so
// tests can exercise the drain path deterministically.
var testInterrupt <-chan struct{}

// cancelOnSignal returns a channel that closes on the first SIGINT or
// SIGTERM: the harness stops dispatching simulations, drains in-flight
// workers, and the run exits non-zero without writing partial artifacts.
// A second signal exits immediately.
func cancelOnSignal(logger *slog.Logger) <-chan struct{} {
	if testInterrupt != nil {
		return testInterrupt
	}
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		sig := <-sigs
		logger.Warn("interrupted; draining in-flight simulations (second signal exits immediately)", "signal", sig)
		close(done)
		<-sigs
		os.Exit(exitInterrupted)
	}()
	return done
}

// result is what every experiment produces: a rendered text table, and
// CSV rows for plotting.
type result interface {
	Render() string
	CSV() [][]string
}

type experiment struct {
	name string
	run  func(harness.Options) (result, error)
}

var experiments = []experiment{
	{"table6", func(o harness.Options) (result, error) { return harness.RunTable6(o) }},
	{"table7", func(o harness.Options) (result, error) { return harness.RunTable7(o) }},
	{"table8", func(o harness.Options) (result, error) { return harness.RunTable8(o) }},
	{"fig8", func(o harness.Options) (result, error) { return harness.RunFig8(o) }},
	{"fig9", func(o harness.Options) (result, error) { return harness.RunFig9(o) }},
	{"fig10", func(o harness.Options) (result, error) { return harness.RunFig10(o) }},
	{"fig11", func(o harness.Options) (result, error) { return harness.RunFig11(o) }},
	{"phases", func(o harness.Options) (result, error) { return harness.RunPhaseProfile(o) }},
	{"ablation-ratio", func(o harness.Options) (result, error) { return harness.RunAblationCacheRatio(o) }},
	{"ablation-inbox", func(o harness.Options) (result, error) { return harness.RunAblationInbox(o) }},
	{"ablation-rate", func(o harness.Options) (result, error) { return harness.RunAblationRate(o) }},
}

func experimentNames() string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return strings.Join(names, "|")
}

// obsServerStarted, when non-nil, receives the telemetry server's bound
// address right before experiments start. Tests use it to scrape the
// endpoint while a run is in flight.
var obsServerStarted func(addr string)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord-eval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only   = fs.String("only", "", "run one experiment: "+experimentNames())
		seed   = fs.Int64("seed", 1, "simulation seed")
		csvDir = fs.String("csv", "", "directory to write one CSV per experiment (created if missing)")
		jobs   = fs.Int("jobs", runtime.GOMAXPROCS(0), "worker goroutines for independent simulations (output is identical at any value)")

		metricsDir  = fs.String("metrics", "", "directory to write cycle-domain sampled metrics (metrics.csv + metrics.json; created if missing)")
		sampleEvery = fs.Uint64("sample-every", harness.DefaultSampleEvery, "metric sampling interval in simulated cycles (with -metrics)")
		obsAddr     = fs.String("obs-addr", "", "serve live telemetry on this address while running: Prometheus /metrics, expvar /debug/vars, /debug/pprof")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile  = fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
		verbose     = fs.Bool("v", false, "also log per-job scheduling detail")
		quiet       = fs.Bool("quiet", false, "suppress run telemetry; warnings and errors only")
		showVer     = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVer {
		fmt.Fprintln(stdout, "scord-eval", version.String())
		return 0
	}
	if *verbose && *quiet {
		fmt.Fprintln(stderr, "scord-eval: -v and -quiet are mutually exclusive")
		return 2
	}

	// Structured logging to stderr. Experiment results stay on stdout;
	// everything on this logger is telemetry and may be silenced without
	// changing results.
	level := slog.LevelInfo
	switch {
	case *verbose:
		level = slog.LevelDebug
	case *quiet:
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: level}))

	// Reject an unknown -only value before running anything: a typo must
	// not cost a full evaluation pass first.
	if *only != "" {
		known := false
		for _, e := range experiments {
			if strings.EqualFold(*only, e.name) {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(stderr, "scord-eval: unknown experiment %q (choose from %s)\n", *only, experimentNames())
			return 2
		}
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "scord-eval: -jobs must be >= 1, got %d\n", *jobs)
		return 2
	}

	cfg := config.Default()
	cfg.Seed = *seed

	for _, dir := range []string{*csvDir, *metricsDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				logger.Error("creating output directory", "err", err)
				return 1
			}
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			logger.Error("creating cpu profile", "err", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Error("starting cpu profile", "err", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			logger.Info("wrote cpu profile", "path", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				logger.Error("writing heap profile", "err", err)
				return
			}
			logger.Info("wrote heap profile", "path", *memProfile)
		}()
	}

	// Live telemetry: the hub collects job lifecycle and per-job simulated
	// cycle progress; the server exposes it. Both attach only when asked —
	// a run without -obs-addr keeps every device observer detached.
	var tel *obs.RunTelemetry
	if *obsAddr != "" {
		tel = obs.NewRunTelemetry()
		srv, err := obs.StartServer(*obsAddr, tel)
		if err != nil {
			logger.Error("starting telemetry server", "err", err)
			return 1
		}
		defer srv.Close()
		logger.Info("telemetry server listening", "addr", srv.Addr(),
			"endpoints", "/metrics /debug/vars /debug/pprof")
		if obsServerStarted != nil {
			obsServerStarted(srv.Addr())
		}
	}
	var col *obs.Collector
	if *metricsDir != "" {
		col = obs.NewCollector()
	}

	cancel := cancelOnSignal(logger)
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.name) {
			continue
		}
		rep := &harness.Report{}
		opt := harness.Options{
			Config: &cfg, Jobs: *jobs, Report: rep,
			Telemetry: tel, Samples: col, SampleEvery: *sampleEvery,
			Cancel: cancel,
		}
		start := time.Now()
		res, err := e.run(opt)
		if err != nil {
			if errors.Is(err, harness.ErrCanceled) {
				// Workers drained; the experiment's table was never
				// rendered and its CSV never written, and the sampled
				// metrics are incomplete — write nothing partial.
				logger.Warn("interrupted; experiment discarded, no partial artifacts written",
					"experiment", e.name, "err", err)
				return exitInterrupted
			}
			logger.Error("experiment failed", "experiment", e.name, "err", err)
			return 1
		}
		fmt.Fprintln(stdout, res.Render())
		// Scheduling telemetry: wall-clock only, never on stdout, so
		// experiment output stays byte-identical across -jobs values.
		logger.Info("experiment complete",
			"experiment", e.name,
			"sims", len(rep.Jobs()),
			"workers", rep.Workers(),
			"wall", time.Since(start).Round(time.Millisecond),
			"speedup", fmt.Sprintf("%.2fx", rep.Speedup()),
			"utilization", fmt.Sprintf("%.0f%%", 100*rep.Utilization()),
		)
		for _, jt := range rep.Jobs() {
			logger.Debug("job finished", "label", jt.Label, "wall", jt.Wall)
		}

		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.name+".csv")
			if err := harness.WriteCSVFile(path, res); err != nil {
				logger.Error("writing csv", "path", path, "err", err)
				return 1
			}
		}
	}

	if col != nil {
		for _, out := range []struct {
			name  string
			write func(io.Writer) error
		}{
			{"metrics.csv", col.WriteCSV},
			{"metrics.json", col.WriteJSON},
		} {
			path := filepath.Join(*metricsDir, out.name)
			if err := writeFileWith(path, out.write); err != nil {
				logger.Error("writing metrics", "path", path, "err", err)
				return 1
			}
			logger.Info("wrote sampled metrics", "path", path, "series", len(col.Labels()))
		}
	}
	return 0
}

// writeFileWith writes via w into path, removing the file on error so a
// failed run never leaves a truncated artifact behind.
func writeFileWith(path string, w func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := w(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
