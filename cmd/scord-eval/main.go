// Command scord-eval regenerates the ScoRD paper's evaluation: Tables VI,
// VII and VIII, the data series behind Figures 8, 9, 10 and 11, and the
// design-choice ablations of DESIGN.md.
//
// Usage:
//
//	scord-eval                      # run everything
//	scord-eval -only fig8           # one experiment
//	scord-eval -seed 7              # different workload seed
//	scord-eval -csv out/            # also write one CSV per experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"scord/internal/config"
	"scord/internal/harness"
)

// result is what every experiment produces: a rendered text table, and
// CSV rows for plotting.
type result interface {
	Render() string
	CSV() [][]string
}

func main() {
	var (
		only   = flag.String("only", "", "run one experiment: table6|table7|table8|fig8|fig9|fig10|fig11|ablation-ratio|ablation-inbox|ablation-rate")
		seed   = flag.Int64("seed", 1, "simulation seed")
		csvDir = flag.String("csv", "", "directory to write one CSV per experiment (created if missing)")
	)
	flag.Parse()

	cfg := config.Default()
	cfg.Seed = *seed
	opt := harness.Options{Config: &cfg}

	type experiment struct {
		name string
		run  func() (result, error)
	}
	exps := []experiment{
		{"table6", func() (result, error) { return harness.RunTable6(opt) }},
		{"table7", func() (result, error) { return harness.RunTable7(opt) }},
		{"table8", func() (result, error) { return harness.RunTable8(opt) }},
		{"fig8", func() (result, error) { return harness.RunFig8(opt) }},
		{"fig9", func() (result, error) { return harness.RunFig9(opt) }},
		{"fig10", func() (result, error) { return harness.RunFig10(opt) }},
		{"fig11", func() (result, error) { return harness.RunFig11(opt) }},
		{"ablation-ratio", func() (result, error) { return harness.RunAblationCacheRatio(opt) }},
		{"ablation-inbox", func() (result, error) { return harness.RunAblationInbox(opt) }},
		{"ablation-rate", func() (result, error) { return harness.RunAblationRate(opt) }},
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "scord-eval:", err)
			os.Exit(1)
		}
	}

	ran := 0
	for _, e := range exps {
		if *only != "" && !strings.EqualFold(*only, e.name) {
			continue
		}
		ran++
		start := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scord-eval: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s regenerated in %.1fs)\n\n", e.name, time.Since(start).Seconds())

		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scord-eval:", err)
				os.Exit(1)
			}
			if err := harness.WriteCSV(f, res); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "scord-eval:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "scord-eval:", err)
				os.Exit(1)
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "scord-eval: unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
