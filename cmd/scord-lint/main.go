// Command scord-lint is the repo's static-analysis multichecker: it runs
// the scopelint (kernel scope discipline) and detlint (simulator
// determinism) analyzers over the requested packages.
//
// Usage:
//
//	scord-lint [-json] [packages]
//
// With no package patterns it checks ./... . Findings go to stdout, one
// per line (or as a JSON array with -json: analyzer, category, position,
// message). Exit status: 0 clean, 1 findings, 2 operational failure.
//
// Intentional findings — injected races in benchmark kernels, wall-clock
// telemetry that never feeds simulation results — are silenced in place
// with a justifying comment:
//
//	c.AtomicAdd(a.data, 1, gpu.ScopeBlock) //scord:allow(scopelint/crossblock) injected race under test
package main

import (
	"os"

	"scord/internal/analysis/detlint"
	"scord/internal/analysis/framework"
	"scord/internal/analysis/scopelint"
)

func main() {
	os.Exit(framework.Main(os.Stdout, os.Stderr, os.Args[1:], scopelint.Analyzer, detlint.Analyzer))
}
