// Command scord-lint is the repo's static-analysis multichecker: it runs
// the scopelint (kernel scope discipline) and detlint (simulator
// determinism) analyzers over the requested packages.
//
// Usage:
//
//	scord-lint [-json] [packages]
//
// With no package patterns it checks ./... . Findings go to stdout, one
// per line (or as a JSON array with -json: analyzer, category, position,
// message). Exit status: 0 clean, 1 findings, 2 operational failure.
//
// Intentional findings — injected races in benchmark kernels, wall-clock
// telemetry that never feeds simulation results — are silenced in place
// with a justifying comment:
//
//	c.AtomicAdd(a.data, 1, gpu.ScopeBlock) //scord:allow(scopelint/crossblock) injected race under test
package main

import (
	"fmt"
	"os"

	"scord/internal/analysis/detlint"
	"scord/internal/analysis/framework"
	"scord/internal/analysis/scopelint"
	"scord/internal/version"
)

func main() {
	// The analyzer framework owns flag parsing, so -version is
	// intercepted up front like every other tool's.
	for _, a := range os.Args[1:] {
		if a == "-version" || a == "--version" {
			fmt.Println("scord-lint", version.String())
			os.Exit(0)
		}
	}
	os.Exit(framework.Main(os.Stdout, os.Stderr, os.Args[1:], scopelint.Analyzer, detlint.Analyzer))
}
