package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// withInterrupt installs a pre-closed interrupt channel so the command
// under test observes a signal that "arrived" before (or during) its
// work, exercising the drain-and-clean-up path deterministically.
func withInterrupt(t *testing.T) {
	t.Helper()
	ch := make(chan struct{})
	close(ch)
	testInterrupt = ch
	t.Cleanup(func() { testInterrupt = nil })
}

// TestRecordInterruptedRemovesOutput: an interrupted record must not
// leave its trace file behind and must exit with the interrupted status.
func TestRecordInterruptedRemovesOutput(t *testing.T) {
	withInterrupt(t)
	path := filepath.Join(t.TempDir(), "trace.sctr")
	var out, errOut strings.Builder
	code := run([]string{"record", "-bench", "fence.racey.cross-none", "-o", path}, &out, &errOut)
	if code != exitInterrupted {
		t.Fatalf("exit code = %d, want %d; stderr:\n%s", code, exitInterrupted, errOut.String())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("partial trace %s still exists after interrupt (stat err: %v)", path, err)
	}
}

// TestTable8InterruptedRemovesCorpus: an interrupted table8 run must
// drain its workers, remove the partial trace corpus from -dir, and exit
// with the interrupted status.
func TestTable8InterruptedRemovesCorpus(t *testing.T) {
	withInterrupt(t)
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{"table8", "-dir", dir, "-jobs", "2"}, &out, &errOut)
	if code != exitInterrupted {
		t.Fatalf("exit code = %d, want %d; stderr:\n%s", code, exitInterrupted, errOut.String())
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.sctr"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) > 0 {
		t.Errorf("partial corpus left behind after interrupt: %v", left)
	}
	if !strings.Contains(errOut.String(), "interrupted") {
		t.Errorf("stderr missing interruption diagnostic:\n%s", errOut.String())
	}
}

// TestReplayInterrupted: an interrupted replay stops before detectors run
// and exits with the interrupted status.
func TestReplayInterrupted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.sctr")
	var out, errOut strings.Builder
	if code := run([]string{"record", "-bench", "fence.racey.cross-none", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("record: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	withInterrupt(t)
	out.Reset()
	errOut.Reset()
	code := run([]string{"replay", "-detector", "all", path}, &out, &errOut)
	if code != exitInterrupted {
		t.Fatalf("exit code = %d, want %d; stderr:\n%s", code, exitInterrupted, errOut.String())
	}
	if strings.Contains(out.String(), "[ScoRD]") {
		t.Errorf("detector sections rendered despite interrupt:\n%s", out.String())
	}
}
