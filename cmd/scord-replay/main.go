// Command scord-replay records and replays scoped memory-op traces. A
// trace captures the exact access stream a live simulation feeds the
// race detector; replaying it through any detector model reproduces the
// live run's races and detector counters bit-for-bit without
// re-simulating SMs, caches or DRAM — orders of magnitude faster.
//
// Usage:
//
//	scord-replay record -bench GCOL -inject own-atomic -o gcol.sctr
//	scord-replay dump gcol.sctr
//	scord-replay dump -ops 20 gcol.sctr
//	scord-replay replay gcol.sctr
//	scord-replay replay -detector all gcol.sctr
//	scord-replay replay -perturb 500 -perturb-seed 7 gcol.sctr
//	scord-replay predict gcol.sctr
//	scord-replay predict -confirm gcol.sctr
//	scord-replay explore gcol.sctr
//	scord-replay explore -suite -min-beyond 1
//	scord-replay table8 -dir traces/
//
// The replay subcommand's -perturb mode applies bounded, seeded
// reorderings of concurrent accesses to the decoded stream before
// detection, hunting schedule-dependent races the one recorded schedule
// happened not to expose. Races found this way are candidates under some
// warp schedule, not certainties; the test suite cross-checks them
// against the static predictor's tuple set.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"scord/internal/analysis/predict"
	"scord/internal/config"
	"scord/internal/harness"
	"scord/internal/mem"
	"scord/internal/replay"
	"scord/internal/scor"
	"scord/internal/scor/micro"
	"scord/internal/tracefile"
	"scord/internal/version"
)

// exitInterrupted is the exit code after a SIGINT/SIGTERM drain (128 +
// SIGINT, the conventional interrupted status).
const exitInterrupted = 130

// testInterrupt, when non-nil, substitutes for OS signal delivery so
// tests can exercise the drain paths deterministically.
var testInterrupt <-chan struct{}

// cancelOnSignal returns a channel that closes on the first SIGINT or
// SIGTERM. The commands stop dispatching new simulation jobs, drain
// in-flight ones, remove partial output files and exit non-zero — the
// same drain protocol scord-serve follows. A second signal exits
// immediately.
func cancelOnSignal(logger *slog.Logger) <-chan struct{} {
	if testInterrupt != nil {
		return testInterrupt
	}
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		sig := <-sigs
		logger.Warn("interrupted; draining in-flight work (second signal exits immediately)", "signal", sig)
		close(done)
		<-sigs
		os.Exit(exitInterrupted)
	}()
	return done
}

func canceled(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprint(w, `scord-replay <command> [flags]

commands:
  record   run one benchmark live and write its memory-op trace
  dump     print a trace's header and ops in human-readable form
  replay   run detector models over a recorded trace
  explain  replay with provenance capture: per-race evidence and the Table III/IV rule that fired
  predict  soundly predict races reachable from a recorded trace
  explore  enumerate and replay all inequivalent schedules of a trace (DPOR)
  repair   synthesize and verify a minimal-cost fix for a racy trace
  table8   record the micro corpus and regenerate Table VIII from it

run 'scord-replay <command> -h' for the command's flags
`)
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "record":
		return runRecord(args[1:], stdout, stderr)
	case "dump":
		return runDump(args[1:], stdout, stderr)
	case "replay":
		return runReplay(args[1:], stdout, stderr)
	case "explain":
		return runExplain(args[1:], stdout, stderr)
	case "predict":
		return runPredict(args[1:], stdout, stderr)
	case "explore":
		return runExplore(args[1:], stdout, stderr)
	case "repair":
		return runRepair(args[1:], stdout, stderr)
	case "table8":
		return runTable8(args[1:], stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	case "-version", "--version", "version":
		fmt.Fprintln(stdout, "scord-replay", version.String())
		return 0
	}
	fmt.Fprintf(stderr, "scord-replay: unknown command %q\n", args[0])
	usage(stderr)
	return 2
}

func allBenchmarks() []scor.Benchmark {
	return append(scor.Apps(), micro.Benchmarks()...)
}

func parseMode(s string) (config.DetectorMode, error) {
	return config.ParseMode(s)
}

func runRecord(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord-replay record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "", "benchmark to record (same names as scord -list)")
		mode      = fs.String("mode", "base", "detector mode recorded in the trace config: off|base|scord|gran8|gran16")
		inject    = fs.String("inject", "", "comma-separated race injections ('all' for every one)")
		seed      = fs.Int64("seed", 1, "simulation seed")
		scale     = fs.Int("scale", 1, "multiply the benchmark's input size (device memory scales too)")
		out       = fs.String("o", "", "output trace file (default <bench>.sctr)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := slog.New(slog.NewTextHandler(stderr, nil))
	if *benchName == "" {
		fmt.Fprintln(stderr, "scord-replay record: -bench required")
		return 2
	}
	var bench scor.Benchmark
	for _, b := range allBenchmarks() {
		if strings.EqualFold(b.Name(), *benchName) {
			bench = b
			break
		}
	}
	if bench == nil {
		fmt.Fprintf(stderr, "scord-replay record: unknown benchmark %q\n", *benchName)
		return 2
	}
	dm, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay record:", err)
		return 2
	}
	var active []string
	switch *inject {
	case "":
	case "all":
		active = bench.Injections()
	default:
		active = strings.Split(*inject, ",")
	}
	if err := scor.Scale(bench, *scale); err != nil {
		fmt.Fprintln(stderr, "scord-replay record:", err)
		return 2
	}
	cfg := config.Default()
	cfg.Seed = *seed
	cfg.DeviceMemBytes *= *scale

	cancel := cancelOnSignal(logger)
	path := *out
	if path == "" {
		path = bench.Name() + harness.TraceExt
	}
	f, err := os.Create(path)
	if err != nil {
		logger.Error("creating trace file", "err", err)
		return 1
	}
	opt := harness.Options{Jobs: 1, Cancel: cancel}
	if err := harness.RecordBenchmark(opt, cfg, "record/"+bench.Name(), bench, dm, active, f); err != nil {
		f.Close()
		os.Remove(path)
		logger.Error("recording failed", "benchmark", bench.Name(), "err", err)
		return 1
	}
	if err := f.Close(); err != nil {
		logger.Error("closing trace file", "err", err)
		return 1
	}
	// An interrupt during the (uninterruptible) simulation surfaces here:
	// the trace on disk may reflect a run the user gave up on, so honor
	// the drain protocol — remove the output and report the interruption.
	if canceled(cancel) {
		os.Remove(path)
		logger.Warn("interrupted; removed output trace", "path", path)
		return exitInterrupted
	}
	fi, _ := os.Stat(path)
	fmt.Fprintf(stdout, "recorded %s [%v/%v] to %s (%d bytes)\n",
		bench.Name(), dm, active, path, fi.Size())
	return 0
}

func openTrace(fs *flag.FlagSet, cmd string, stderr io.Writer) (*os.File, *tracefile.Reader, int) {
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "scord-replay %s: exactly one trace file argument required\n", cmd)
		return nil, nil, 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "scord-replay %s: %v\n", cmd, err)
		return nil, nil, 1
	}
	r, err := tracefile.NewReader(f)
	if err != nil {
		f.Close()
		fmt.Fprintf(stderr, "scord-replay %s: %v\n", cmd, err)
		return nil, nil, 1
	}
	return f, r, 0
}

func printHeader(w io.Writer, h tracefile.Header) {
	fmt.Fprintf(w, "format     v%d\n", h.Version)
	fmt.Fprintf(w, "benchmark  %s\n", h.Benchmark)
	fmt.Fprintf(w, "injections %v\n", h.Injections)
	fmt.Fprintf(w, "seed       %d\n", h.Seed)
	fmt.Fprintf(w, "detector   %v\n", h.Config.Detector.Mode)
	fmt.Fprintf(w, "confighash %016x\n", h.ConfigHash)
}

func runDump(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord-replay dump", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxOps := fs.Int("ops", 0, "print at most N ops (0 = all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, r, code := openTrace(fs, "dump", stderr)
	if code != 0 {
		return code
	}
	defer f.Close()
	printHeader(stdout, r.Header())
	fmt.Fprintln(stdout)
	printed, total := 0, 0
	for {
		op, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(stderr, "scord-replay dump: op %d: %v\n", total, err)
			return 1
		}
		total++
		if *maxOps == 0 || printed < *maxOps {
			fmt.Fprintln(stdout, op.String())
			printed++
		}
	}
	if printed < total {
		fmt.Fprintf(stdout, "... %d more ops\n", total-printed)
	}
	fmt.Fprintf(stdout, "\n%d ops total\n", total)
	return 0
}

func runReplay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord-replay replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		detector    = fs.String("detector", "scord", "detector model: "+strings.Join(replay.TargetNames(), "|")+"|all")
		mode        = fs.String("mode", "", "override the trace's detector mode for the scord target: off|base|scord|gran8|gran16")
		perturb     = fs.Int("perturb", 0, "apply N bounded random reorderings of concurrent accesses before detection")
		perturbSeed = fs.Int64("perturb-seed", 1, "perturbation seed (with -perturb)")
		perturbDist = fs.Int("perturb-dist", 8, "max adjacent swaps one perturbation may travel (with -perturb)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, r, code := openTrace(fs, "replay", stderr)
	if code != 0 {
		return code
	}
	defer f.Close()

	names := []string{*detector}
	if *detector == "all" {
		names = replay.TargetNames()
	}
	cfg := r.Header().Config
	if *mode != "" {
		dm, err := parseMode(*mode)
		if err != nil {
			fmt.Fprintln(stderr, "scord-replay replay:", err)
			return 2
		}
		cfg = cfg.WithDetector(dm)
	}

	printHeader(stdout, r.Header())
	if *perturb > 0 {
		fmt.Fprintf(stdout, "perturb    %d swaps, dist %d, seed %d\n", *perturb, *perturbDist, *perturbSeed)
	}

	// Streaming replay suffices for a single unperturbed target; any
	// perturbation or multi-target run decodes the trace once up front.
	var ops []tracefile.Op
	if *perturb > 0 || len(names) > 1 {
		var err error
		ops, err = replay.ReadAll(r)
		if err != nil {
			fmt.Fprintln(stderr, "scord-replay replay:", err)
			return 1
		}
		if *perturb > 0 {
			ops = replay.Perturb(ops, *perturb, *perturbDist, *perturbSeed)
		}
	}

	cancel := cancelOnSignal(slog.New(slog.NewTextHandler(stderr, nil)))
	for _, name := range names {
		if canceled(cancel) {
			fmt.Fprintln(stderr, "scord-replay replay: interrupted")
			return exitInterrupted
		}
		t, err := replay.TargetByName(name, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "scord-replay replay:", err)
			return 2
		}
		var res *replay.Result
		if ops != nil {
			res, err = replay.RunOps(r.Header(), ops, t)
		} else {
			res, err = replay.Run(r, t)
		}
		if err != nil {
			fmt.Fprintf(stderr, "scord-replay replay: %s: %v\n", name, err)
			return 1
		}
		res.WriteText(stdout)
	}
	return 0
}

func runPredict(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord-replay predict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		check   = fs.Bool("check", true, "re-verify every witness independently against the raw op stream")
		confirm = fs.Bool("confirm", false, "confirm each prediction against the dynamic detector: on the recorded schedule, then on a targeted legal perturbation of the witness pair")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, r, code := openTrace(fs, "predict", stderr)
	if code != 0 {
		return code
	}
	defer f.Close()

	h := r.Header()
	ops, err := replay.ReadAll(r)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay predict:", err)
		return 1
	}
	res, err := predict.Run(h, ops, predict.Options{})
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay predict:", err)
		return 1
	}
	printHeader(stdout, h)
	res.WriteText(stdout)

	if *check {
		for _, p := range res.Predictions {
			if err := predict.CheckWitness(h, ops, p.Witness); err != nil {
				fmt.Fprintf(stderr, "scord-replay predict: witness for %s/%s failed verification: %v\n",
					p.Alloc, p.Record.Kind, err)
				return 1
			}
		}
	}
	if *confirm {
		observed, err := observedTuples(h, ops)
		if err != nil {
			fmt.Fprintln(stderr, "scord-replay predict:", err)
			return 1
		}
		fmt.Fprintln(stdout)
		for _, p := range res.Predictions {
			c, err := predict.Confirm(h, ops, p, observed)
			if err != nil {
				fmt.Fprintln(stderr, "scord-replay predict:", err)
				return 1
			}
			verdict := c.String()
			if c == predict.Unconfirmed {
				key := h.Benchmark + "/" + p.Alloc + "/" + p.Record.Kind.String()
				if _, ok := predict.Justified[key]; ok {
					verdict = "justified"
				}
			}
			fmt.Fprintf(stdout, "confirm %s/%s: %s\n", p.Alloc, p.Record.Kind, verdict)
		}
	}
	return 0
}

// observedTuples replays the recorded schedule through the real detector
// and collects its (alloc, kind) race tuples.
func observedTuples(h tracefile.Header, ops []tracefile.Op) (map[predict.Tuple]bool, error) {
	sc, err := replay.NewScoRD(h.Config)
	if err != nil {
		return nil, err
	}
	res, err := replay.RunOps(h, ops, sc)
	if err != nil {
		return nil, err
	}
	observed := map[predict.Tuple]bool{}
	for _, rec := range res.Races {
		if al, ok := res.Mem.Locate(mem.Addr(rec.Addr)); ok {
			observed[predict.Tuple{Alloc: al.Name, Kind: rec.Kind}] = true
		}
	}
	return observed, nil
}

func runTable8(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord-replay table8", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir  = fs.String("dir", "", "directory for the recorded micro corpus (default: a temp dir, removed afterwards)")
		jobs = fs.Int("jobs", runtime.GOMAXPROCS(0), "worker goroutines (output is identical at any value)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "scord-replay table8: -jobs must be >= 1, got %d\n", *jobs)
		return 2
	}
	logger := slog.New(slog.NewTextHandler(stderr, nil))
	cancel := cancelOnSignal(logger)
	t8, err := harness.RunTable8RecordReplay(harness.Options{Jobs: *jobs, Cancel: cancel}, *dir)
	if err != nil {
		if errors.Is(err, harness.ErrCanceled) {
			// The recorded corpus is incomplete; remove this run's trace
			// files so a later replay cannot mix partial state.
			if *dir != "" {
				for _, m := range micro.All() {
					os.Remove(harness.MicroTracePath(*dir, m.Name()))
				}
				logger.Warn("interrupted; removed partial trace corpus", "dir", *dir)
			}
			fmt.Fprintln(stderr, "scord-replay table8: interrupted:", err)
			return exitInterrupted
		}
		fmt.Fprintln(stderr, "scord-replay table8:", err)
		return 1
	}
	fmt.Fprintln(stdout, t8.Render())
	return 0
}
