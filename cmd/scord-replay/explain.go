package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"scord/internal/core"
	"scord/internal/mem"
	"scord/internal/obs"
	"scord/internal/obs/tracing"
	"scord/internal/replay"
)

// runExplain replays a recorded trace through the ScoRD detector with
// provenance capture on and prints, for every race verdict, the full
// evidence the detector decided on: both access sites, scope and
// sharing bits, fence/bloom/barrier-phase state at each side, and the
// Table III/IV row that fired. Optionally it also writes the trace's
// cycle-domain span tree (-span-json) — byte-identical to the span JSON
// a live run of the same configuration emits.
func runExplain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord-replay explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode     = fs.String("mode", "scord", "detector mode to explain under: base|scord|gran8|gran16")
		spanJSON = fs.String("span-json", "", "also write the cycle-domain span trace (scord-spans/1 JSON) to this file")
		perfetto = fs.String("perfetto", "", "also write a Perfetto span trace with race flow arrows to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, r, code := openTrace(fs, "explain", stderr)
	if code != 0 {
		return code
	}
	defer f.Close()

	dm, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay explain:", err)
		return 2
	}
	h := r.Header()
	cfg := h.Config.WithDetector(dm)

	ops, err := replay.ReadAll(r)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay explain:", err)
		return 1
	}

	t, err := replay.NewScoRD(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay explain:", err)
		return 2
	}
	t.EnableProvenance()
	res, err := replay.RunOps(h, ops, t)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay explain:", err)
		return 1
	}

	printHeader(stdout, h)
	writeExplain(stdout, res, t)

	// The span-json export must stay byte-identical to a live run's, so
	// it is written from the clean op-derived tree BEFORE race marks are
	// attached; the Perfetto export then decorates the same tree with
	// race instants and flow arrows.
	if *spanJSON != "" || *perfetto != "" {
		b := tracing.FromOps(h, ops)
		if *spanJSON != "" {
			if code := writeSpanFile(*spanJSON, b.WriteJSON, stderr); code != 0 {
				return code
			}
		}
		if *perfetto != "" {
			tracing.AttachRaces(b, raceMarks(res.Races, t))
			write := func(w io.Writer) error { return obs.WritePerfettoSpans(w, b.Snapshot()) }
			if code := writeSpanFile(*perfetto, write, stderr); code != 0 {
				return code
			}
		}
	}
	return 0
}

// raceMarks converts the replay's race verdicts (with their captured
// evidence) into span-tree race marks for the Perfetto export.
func raceMarks(races []core.Record, t *replay.ScoRD) []tracing.RaceMark {
	marks := make([]tracing.RaceMark, 0, len(races))
	for _, rec := range races {
		ev, ok := t.EvidenceFor(rec)
		if !ok {
			continue
		}
		marks = append(marks, tracing.RaceMark{
			Kind:      rec.Kind.String(),
			Addr:      rec.Addr,
			Site:      rec.Site,
			PrevBlock: ev.Prev.Block, PrevWarp: ev.Prev.Warp, PrevCycle: ev.Prev.Cycle,
			CurBlock: ev.Cur.Block, CurWarp: ev.Cur.Warp, CurCycle: ev.Cur.Cycle,
		})
	}
	return marks
}

// writeSpanFile creates path, runs write into it, and removes the file
// on failure so a partial export never survives.
func writeSpanFile(path string, write func(io.Writer) error, stderr io.Writer) int {
	out, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay explain:", err)
		return 1
	}
	if err := write(out); err != nil {
		out.Close()
		os.Remove(path)
		fmt.Fprintln(stderr, "scord-replay explain:", err)
		return 1
	}
	if err := out.Close(); err != nil {
		fmt.Fprintln(stderr, "scord-replay explain:", err)
		return 1
	}
	return 0
}

// writeExplain renders the verdicts: per race, the one-line description,
// the human diagnosis, and the captured evidence block.
func writeExplain(w io.Writer, res *replay.Result, t *replay.ScoRD) {
	races := res.Races
	fmt.Fprintf(w, "\n[%s] %d ops (%d accesses, %d kernels): %d unique race(s) explained\n",
		res.Detector, res.Ops, res.Accesses, res.Kernels, len(races))
	locate := func(addr uint64) string { return res.Mem.Describe(mem.Addr(addr)) }
	for i, rec := range races {
		fmt.Fprintf(w, "\nrace %d: %s\n", i+1, res.DescribeRecord(rec))
		diag := core.Explain(rec, locate)
		// Explain's first line repeats the tuple DescribeRecord just
		// printed; keep only the what/fix/note diagnosis lines.
		if _, rest, ok := strings.Cut(diag, "\n"); ok {
			diag = rest
		}
		fmt.Fprint(w, diag)
		if !strings.HasSuffix(diag, "\n") {
			fmt.Fprintln(w)
		}
		ev, ok := t.EvidenceFor(rec)
		if !ok {
			fmt.Fprintln(w, "  provenance: (not captured)")
			continue
		}
		fmt.Fprintln(w, "  provenance:")
		fmt.Fprint(w, indent(ev.Render(), "  "))
	}
	if res.Overflowed > 0 {
		fmt.Fprintf(w, "\n(%d distinct race(s) dropped after the record cap)\n", res.Overflowed)
	}
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = pad + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}
