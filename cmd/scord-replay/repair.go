package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"runtime"

	"scord/internal/analysis/framework"
	"scord/internal/analysis/racepred"
	"scord/internal/analysis/repair"
	"scord/internal/harness"
	"scord/internal/replay"
)

// runRepair synthesizes verified fixes. Two modes:
//
//	scord-replay repair gcol.sctr         repair one recorded trace
//	scord-replay repair -suite            record + repair the whole
//	                                      injected-bug suite (26 app
//	                                      injections + 32 micros)
//
// -repo wires in the racepred static oracle (abstract re-prediction over
// patched dataflow traces); without it only the dynamic replay and the
// predictive witness-schedule oracles gate each fix. -min-repaired turns
// the suite run into a CI gate: fewer fully repaired injections, or any
// race-free configuration producing repair targets, exits non-zero.
func runRepair(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord-replay repair", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suite       = fs.Bool("suite", false, "repair the whole injected-bug suite instead of one trace")
		repoRoot    = fs.String("repo", "", "module root for the racepred static oracle (empty: dynamic oracles only)")
		jsonOut     = fs.Bool("json", false, "emit the report as JSON")
		jobs        = fs.Int("jobs", runtime.GOMAXPROCS(0), "worker goroutines for -suite (output is identical at any value)")
		minRepaired = fs.Int("min-repaired", -1, "with -suite: fail unless at least N injections are fully repaired and no race-free configuration regresses")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "scord-replay repair: -jobs must be >= 1, got %d\n", *jobs)
		return 2
	}
	if *suite {
		return runRepairSuite(fs, stdout, stderr, *repoRoot, *jsonOut, *jobs, *minRepaired)
	}
	if *minRepaired >= 0 {
		fmt.Fprintln(stderr, "scord-replay repair: -min-repaired requires -suite")
		return 2
	}
	return runRepairTrace(fs, stdout, stderr, *repoRoot, *jsonOut)
}

func runRepairTrace(fs *flag.FlagSet, stdout, stderr io.Writer, repoRoot string, jsonOut bool) int {
	f, r, code := openTrace(fs, "repair", stderr)
	if code != 0 {
		return code
	}
	defer f.Close()
	h := r.Header()
	ops, err := replay.ReadAll(r)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay repair:", err)
		return 1
	}
	var an *racepred.Analysis
	if repoRoot != "" {
		pkgs, err := framework.Load(repoRoot, "./internal/scor", "./internal/scor/micro")
		if err != nil {
			fmt.Fprintln(stderr, "scord-replay repair: loading packages:", err)
			return 1
		}
		if an, err = racepred.Analyze(pkgs); err != nil {
			fmt.Fprintln(stderr, "scord-replay repair: static analysis:", err)
			return 1
		}
	}
	rr := &repair.Repairer{Bench: h.Benchmark, Header: h, Ops: ops, Analysis: an}
	rep, err := rr.RepairAll()
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay repair:", err)
		return 1
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "scord-replay repair:", err)
			return 1
		}
		return repairExit(rep)
	}
	printHeader(stdout, h)
	fmt.Fprintln(stdout)
	if len(rep.Outcomes) == 0 {
		fmt.Fprintln(stdout, "no confirmed races; nothing to repair")
		return 0
	}
	for _, o := range rep.Outcomes {
		if o.Repaired {
			fmt.Fprintf(stdout, "repaired %s\n  fix      %s: %s\n", o.Target, o.Fix.Kind, o.Fix.Detail)
			ev := o.Evidence
			fmt.Fprintf(stdout, "  evidence replay-clean=%v predict-killed=%v perturb-clean=%v", ev.ReplayClean, ev.PredictKilled, ev.PerturbClean)
			if ev.StaticChecked {
				fmt.Fprintf(stdout, " static-killed=%v (enforced=%v)", ev.StaticKilled, ev.StaticEnforced)
			}
			fmt.Fprintf(stdout, "\n  overhead %d ops touched, %d ops inserted\n", ev.OpsTouched, ev.OpsInserted)
		} else {
			fmt.Fprintf(stdout, "unrepaired %s: %s\n", o.Target, o.Reason)
			for _, rej := range o.Rejected {
				fmt.Fprintf(stdout, "  rejected %s\n", rej)
			}
		}
	}
	if rep.FullyRepaired {
		fmt.Fprintln(stdout, "\nfully repaired: final trace replays race-free")
	} else {
		fmt.Fprintf(stdout, "\nNOT fully repaired; residual races: %v\n", rep.Residual)
	}
	return repairExit(rep)
}

// repairExit maps a single-trace repair to an exit status: 0 when the
// trace ends race-free (including the nothing-to-repair case), 1 when
// confirmed races remain.
func repairExit(rep *repair.Report) int {
	if rep.FullyRepaired {
		return 0
	}
	return 1
}

func runRepairSuite(fs *flag.FlagSet, stdout, stderr io.Writer, repoRoot string, jsonOut bool, jobs, minRepaired int) int {
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "scord-replay repair: -suite takes no trace argument")
		return 2
	}
	logger := slog.New(slog.NewTextHandler(stderr, nil))
	cancel := cancelOnSignal(logger)
	table, err := harness.RunRepairSuite(harness.Options{Jobs: jobs, Cancel: cancel}, repoRoot)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay repair:", err)
		if canceled(cancel) {
			return exitInterrupted
		}
		return 1
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(table); err != nil {
			fmt.Fprintln(stderr, "scord-replay repair:", err)
			return 1
		}
	} else {
		table.WriteText(stdout)
	}
	if minRepaired >= 0 {
		repaired, total := table.InjectedRepaired()
		if regress := table.Regressions(); regress > 0 {
			fmt.Fprintf(stderr, "scord-replay repair: %d race-free configurations produced repair targets\n", regress)
			return 1
		}
		if repaired < minRepaired {
			fmt.Fprintf(stderr, "scord-replay repair: %d/%d injections fully repaired, below the pinned baseline %d\n",
				repaired, total, minRepaired)
			return 1
		}
		fmt.Fprintf(stderr, "repair gate ok: %d/%d injections fully repaired (baseline %d), zero regressions\n",
			repaired, total, minRepaired)
	}
	return 0
}
