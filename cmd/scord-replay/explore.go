package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"runtime"

	"scord/internal/analysis/explore"
	"scord/internal/analysis/predict"
	"scord/internal/harness"
	"scord/internal/replay"
)

// runExplore enumerates and replays the inequivalent schedules of a
// recorded trace. Two modes:
//
//	scord-replay explore gcol.sctr       explore one recorded trace
//	scord-replay explore -suite          record + explore the whole suite
//	                                     (app injections + micros + the
//	                                     masked-race example)
//
// Single-trace mode seeds the DFS with the static predictor's
// predictions (disable with -seeds=false), so the verdict covers at
// least everything the greedy PerturbTarget confirmation walk can
// reach. The suite run gates itself: every dynamically observed race
// and every greedy-confirmable prediction must be found, every witness
// must verify, and -min-beyond requires at least N races reachable only
// by systematic exploration.
func runExplore(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scord-replay explore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suite        = fs.Bool("suite", false, "explore the whole recorded suite instead of one trace")
		jsonOut      = fs.Bool("json", false, "emit the verdict as JSON")
		jobs         = fs.Int("jobs", runtime.GOMAXPROCS(0), "parallel replay workers (output is identical at any value)")
		maxSchedules = fs.Int("max-schedules", 0, "DFS schedule budget per trace (0: default)")
		maxDepth     = fs.Int("max-depth", 0, "stop branching after this many scheduled ops (0: unlimited)")
		maxPreempt   = fs.Int("max-preempt", 0, "preemption bound per schedule (0: unlimited)")
		seeds        = fs.Bool("seeds", true, "seed the explorer with the static predictor's predictions")
		minBeyond    = fs.Int("min-beyond", -1, "with -suite: fail unless at least N races are reachable only by exploration")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "scord-replay explore: -jobs must be >= 1, got %d\n", *jobs)
		return 2
	}
	if *suite {
		return runExploreSuite(fs, stdout, stderr, *jsonOut, *jobs, *maxSchedules, *minBeyond)
	}
	if *minBeyond >= 0 {
		fmt.Fprintln(stderr, "scord-replay explore: -min-beyond requires -suite")
		return 2
	}
	return runExploreTrace(fs, stdout, stderr, *jsonOut, *jobs, *maxSchedules, *maxDepth, *maxPreempt, *seeds)
}

func runExploreTrace(fs *flag.FlagSet, stdout, stderr io.Writer, jsonOut bool, jobs, maxSchedules, maxDepth, maxPreempt int, seeds bool) int {
	f, r, code := openTrace(fs, "explore", stderr)
	if code != 0 {
		return code
	}
	defer f.Close()
	h := r.Header()
	ops, err := replay.ReadAll(r)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay explore:", err)
		return 1
	}
	opt := explore.Options{
		MaxSchedules:   maxSchedules,
		MaxDepth:       maxDepth,
		MaxPreemptions: maxPreempt,
		Jobs:           jobs,
	}
	if seeds {
		pres, err := predict.Run(h, ops, predict.Options{})
		if err != nil {
			fmt.Fprintln(stderr, "scord-replay explore: predict:", err)
			return 1
		}
		opt.Seeds = pres.Predictions
	}
	v, err := explore.Explore(h, ops, opt)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay explore:", err)
		return 1
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fmt.Fprintln(stderr, "scord-replay explore:", err)
			return 1
		}
		return 0
	}
	printHeader(stdout, h)
	fmt.Fprintln(stdout)
	v.WriteText(stdout)
	return 0
}

func runExploreSuite(fs *flag.FlagSet, stdout, stderr io.Writer, jsonOut bool, jobs, maxSchedules, minBeyond int) int {
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "scord-replay explore: -suite takes no trace argument")
		return 2
	}
	logger := slog.New(slog.NewTextHandler(stderr, nil))
	cancel := cancelOnSignal(logger)
	table, err := harness.RunExploreSuite(harness.Options{Jobs: jobs, Cancel: cancel}, maxSchedules)
	if err != nil {
		fmt.Fprintln(stderr, "scord-replay explore:", err)
		if canceled(cancel) {
			return exitInterrupted
		}
		return 1
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(table); err != nil {
			fmt.Fprintln(stderr, "scord-replay explore:", err)
			return 1
		}
	} else {
		table.WriteText(stdout)
	}
	if errs := table.GateErrors(); len(errs) > 0 {
		fmt.Fprintf(stderr, "scord-replay explore: %d gate violations\n", len(errs))
		for _, e := range errs {
			fmt.Fprintln(stderr, "  "+e)
		}
		return 1
	}
	if minBeyond >= 0 {
		if beyond := table.BeyondGreedy(); beyond < minBeyond {
			fmt.Fprintf(stderr, "scord-replay explore: %d races beyond the greedy walk, below the pinned baseline %d\n",
				beyond, minBeyond)
			return 1
		}
		fmt.Fprintf(stderr, "explore gate ok: %d races beyond the greedy walk (baseline %d), zero violations\n",
			table.BeyondGreedy(), minBeyond)
	}
	return 0
}
