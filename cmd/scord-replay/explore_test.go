package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExploreSubcommand records the racey fence micro and explores the
// trace, comparing byte-for-byte against the checked-in golden (the same
// diff the CI smoke step performs), then checks the JSON surface and the
// flag contract.
func TestExploreSubcommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.sctr")
	var out, errOut strings.Builder
	if code := run([]string{"record", "-bench", "fence.racey.cross-none", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("record: exit code = %d, stderr:\n%s", code, errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"explore", path}, &out, &errOut); code != 0 {
		t.Fatalf("explore: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "explore_fence.golden"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if out.String() != string(golden) {
		t.Errorf("explore output differs from testdata/explore_fence.golden:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}

	// The verdict is identical at any -jobs value.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"explore", "-jobs", "7", path}, &out, &errOut); code != 0 {
		t.Fatalf("explore -jobs 7: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	if out.String() != string(golden) {
		t.Errorf("explore -jobs 7 output differs from the golden:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"explore", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("explore -json: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	js := out.String()
	for _, want := range []string{`"exhaustive": true`, `"alloc": "m.data"`, `"witnessOK": true`} {
		if !strings.Contains(js, want) {
			t.Errorf("explore -json missing %q:\n%s", want, js)
		}
	}

	// -min-beyond is a suite-only gate.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"explore", "-min-beyond", "1", path}, &out, &errOut); code != 2 {
		t.Fatalf("explore -min-beyond without -suite: exit code = %d, want 2", code)
	}
}

// TestExploreRejectsCorruptTrace: a truncated trace fails cleanly.
func TestExploreRejectsCorruptTrace(t *testing.T) {
	good := filepath.Join(t.TempDir(), "good.sctr")
	bad := filepath.Join(t.TempDir(), "bad.sctr")
	var out, errOut strings.Builder
	if code := run([]string{"record", "-bench", "fence.racey.cross-none", "-o", good}, &out, &errOut); code != 0 {
		t.Fatalf("record: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"explore", bad}, &out, &errOut); code == 0 {
		t.Fatal("exploring a truncated trace unexpectedly succeeded")
	}
}
