package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNoCommandShowsUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "record") || !strings.Contains(errOut.String(), "replay") {
		t.Errorf("usage missing commands:\n%s", errOut.String())
	}
}

func TestUnknownCommandRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"frobnicate"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown command "frobnicate"`) {
		t.Fatalf("stderr %q missing diagnostic", errOut.String())
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"record", "-bench", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown benchmark "nope"`) {
		t.Fatalf("stderr %q missing diagnostic", errOut.String())
	}
}

// TestRecordDumpReplayRoundTrip drives the whole CLI surface on one racey
// microbenchmark: record a trace, dump it, replay it through every
// detector model, and replay a perturbed variant — all through run(), the
// same path main() takes.
func TestRecordDumpReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.sctr")
	var out, errOut strings.Builder
	code := run([]string{"record", "-bench", "fence.racey.cross-none", "-o", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("record: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "recorded fence.racey.cross-none") {
		t.Errorf("record output:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"dump", "-ops", "8", path}, &out, &errOut); code != 0 {
		t.Fatalf("dump: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	dump := out.String()
	for _, want := range []string{"benchmark  fence.racey.cross-none", "alloc", "kernel", "ops total"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump output missing %q:\n%s", want, dump)
		}
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"replay", "-detector", "all", path}, &out, &errOut); code != 0 {
		t.Fatalf("replay: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	rep := out.String()
	for _, det := range []string{"[ScoRD]", "[LDetector]", "[HAccRG]", "[Barracuda]", "[CURD]"} {
		if !strings.Contains(rep, det) {
			t.Errorf("replay output missing %s:\n%s", det, rep)
		}
	}
	if !strings.Contains(rep, "missing-device-fence race") {
		t.Errorf("replay did not reproduce the recorded race:\n%s", rep)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"replay", "-perturb", "10", "-perturb-seed", "3", path}, &out, &errOut); code != 0 {
		t.Fatalf("perturbed replay: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "perturb    10 swaps") {
		t.Errorf("perturbed replay output missing perturb banner:\n%s", out.String())
	}
}

func TestReplayModeOverride(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.sctr")
	var out, errOut strings.Builder
	if code := run([]string{"record", "-bench", "fence.racey.cross-none", "-mode", "off", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("record: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	// A trace recorded with detection off still replays under any mode.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"replay", "-detector", "scord", "-mode", "scord", path}, &out, &errOut); code != 0 {
		t.Fatalf("replay -mode scord: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "missing-device-fence race") {
		t.Errorf("mode-overridden replay missed the race:\n%s", out.String())
	}
	// Without the override the scord target has no mode to run under.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"replay", "-detector", "scord", path}, &out, &errOut); code == 0 {
		t.Fatal("replaying an off-mode trace without -mode unexpectedly succeeded")
	}
}

func TestTable8Subcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("records and replays the whole micro corpus")
	}
	var out, errOut strings.Builder
	if code := run([]string{"table8", "-jobs", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("table8: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"Table VIII", "ScoRD", "Barracuda"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table8 output missing %q:\n%s", want, out.String())
		}
	}
}

// TestPredictSubcommand records the racey fence micro and runs the
// predictive analysis over the trace, comparing byte-for-byte against
// the checked-in golden (the same diff the CI smoke step performs).
func TestPredictSubcommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.sctr")
	var out, errOut strings.Builder
	if code := run([]string{"record", "-bench", "fence.racey.cross-none", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("record: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"predict", "-confirm", path}, &out, &errOut); code != 0 {
		t.Fatalf("predict: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "predict_fence.golden"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if out.String() != string(golden) {
		t.Errorf("predict output differs from testdata/predict_fence.golden:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestPredictRejectsCorruptTrace: a truncated trace fails cleanly.
func TestPredictRejectsCorruptTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.sctr")
	good := filepath.Join(t.TempDir(), "good.sctr")
	var out, errOut strings.Builder
	if code := run([]string{"record", "-bench", "fence.racey.cross-none", "-o", good}, &out, &errOut); code != 0 {
		t.Fatalf("record: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"predict", path}, &out, &errOut); code == 0 {
		t.Fatal("predicting over a truncated trace unexpectedly succeeded")
	}
}

// TestRepairSubcommand drives the repair CLI end to end: record a racey
// micro at the scord detector mode, repair it (text and JSON), and check
// a race-free trace reports nothing to repair.
func TestRepairSubcommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "racey.sctr")
	var out, errOut strings.Builder
	if code := run([]string{"record", "-bench", "atom.racey.block-cross", "-mode", "scord", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("record: exit code = %d, stderr:\n%s", code, errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"repair", path}, &out, &errOut); code != 0 {
		t.Fatalf("repair: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"repaired m.data/scoped-atomic",
		"promote-scope",
		"replay-clean=true",
		"perturb-clean=true",
		"fully repaired",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("repair output missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"repair", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("repair -json: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	js := out.String()
	for _, want := range []string{`"fully_repaired": true`, `"kind": "promote-scope"`, `"replay_clean": true`} {
		if !strings.Contains(js, want) {
			t.Errorf("repair -json missing %q:\n%s", want, js)
		}
	}

	clean := filepath.Join(t.TempDir(), "clean.sctr")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"record", "-bench", "fence.ok.cross-device-fence", "-mode", "scord", "-o", clean}, &out, &errOut); code != 0 {
		t.Fatalf("record clean: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"repair", clean}, &out, &errOut); code != 0 {
		t.Fatalf("repair clean: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "no confirmed races") {
		t.Errorf("repair of race-free trace:\n%s", out.String())
	}

	// -min-repaired is a suite-only gate.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"repair", "-min-repaired", "1", path}, &out, &errOut); code != 2 {
		t.Fatalf("repair -min-repaired without -suite: exit code = %d, want 2", code)
	}
}

// TestExplainSubcommand records the racey fence micro and explains the
// trace's race verdicts with full provenance, comparing byte-for-byte
// against the checked-in golden (the same diff the CI smoke performs).
func TestExplainSubcommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.sctr")
	var out, errOut strings.Builder
	if code := run([]string{"record", "-bench", "fence.racey.cross-none", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("record: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"explain", path}, &out, &errOut); code != 0 {
		t.Fatalf("explain: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "explain_fence.golden"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if out.String() != string(golden) {
		t.Errorf("explain output differs from testdata/explain_fence.golden:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestExplainSpanJSONMatchesLive: the cycle-domain span tree exported
// from a replayed trace is byte-identical to the one the live simulation
// of the same configuration emits — the tracing layer's core determinism
// contract.
func TestExplainSpanJSONMatchesLive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.sctr")
	var out, errOut strings.Builder
	if code := run([]string{"record", "-bench", "fence.racey.cross-none", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("record: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	spanA := filepath.Join(dir, "a.json")
	spanB := filepath.Join(dir, "b.json")
	if code := run([]string{"explain", "-span-json", spanA, path}, &out, &errOut); code != 0 {
		t.Fatalf("explain: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	if code := run([]string{"explain", "-mode", "base", "-span-json", spanB, path}, &out, &errOut); code != 0 {
		t.Fatalf("explain -mode base: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	a, err := os.ReadFile(spanA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(spanB)
	if err != nil {
		t.Fatal(err)
	}
	// The span tree derives from the recorded op stream alone, so the
	// detector mode must not perturb it.
	if string(a) != string(b) {
		t.Error("span JSON differs across detector modes")
	}
	if !strings.Contains(string(a), `"clock_domain": "cycles"`) {
		t.Error("span JSON missing cycle clock domain")
	}
	if !strings.Contains(string(a), `"check-batch"`) {
		t.Error("span JSON missing check-batch spans")
	}
}

// TestExplainPerfettoFlows: the Perfetto export carries the race instant
// and a flow arrow linking the access spans.
func TestExplainPerfettoFlows(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.sctr")
	var out, errOut strings.Builder
	if code := run([]string{"record", "-bench", "fence.racey.cross-none", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("record: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	pf := filepath.Join(dir, "pf.json")
	if code := run([]string{"explain", "-perfetto", pf, path}, &out, &errOut); code != 0 {
		t.Fatalf("explain -perfetto: exit code = %d, stderr:\n%s", code, errOut.String())
	}
	raw, err := os.ReadFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "race"`, `"ph": "s"`, `"ph": "f"`, `"name": "check-batch"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("perfetto export missing %s", want)
		}
	}
}
