// Command gtgraph generates R-MAT graphs (the GTgraph substitute used by
// the GCOL and GCON benchmarks) and prints them as an edge list or a
// degree summary.
//
// Usage:
//
//	gtgraph -v 1024 -e 4096 -seed 3            # edge list on stdout
//	gtgraph -v 1024 -e 4096 -summary
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"scord/internal/gtgraph"
)

func main() {
	var (
		v       = flag.Int("v", 1024, "vertices")
		e       = flag.Int("e", 4096, "undirected edges")
		seed    = flag.Int64("seed", 1, "generator seed")
		summary = flag.Bool("summary", false, "print degree statistics instead of edges")
	)
	flag.Parse()

	g := gtgraph.RMAT(*v, *e, *seed)

	if *summary {
		degs := make([]int, g.V)
		maxDeg := 0
		for i := range degs {
			degs[i] = g.Degree(i)
			if degs[i] > maxDeg {
				maxDeg = degs[i]
			}
		}
		sort.Ints(degs)
		comps := map[int32]int{}
		for _, l := range gtgraph.Components(g) {
			comps[l]++
		}
		fmt.Printf("vertices     %d\n", g.V)
		fmt.Printf("edges        %d\n", g.Edges())
		fmt.Printf("max degree   %d\n", maxDeg)
		fmt.Printf("median deg   %d\n", degs[len(degs)/2])
		fmt.Printf("components   %d\n", len(comps))
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# RMAT v=%d e=%d seed=%d\n", g.V, g.Edges(), *seed)
	for u := 0; u < g.V; u++ {
		for _, n := range g.Neighbors(u) {
			if int32(u) < n {
				fmt.Fprintf(w, "%d %d\n", u, n)
			}
		}
	}
}
