// Workstealing: the paper's Figure 3 case study, end to end.
//
// The Graph Coloring benchmark distributes vertex partitions across
// threadblocks and lets idle blocks steal chunks from a victim's
// partition. The work queue head must be advanced with *device-scope*
// atomics because both the owner and stealers touch it. The "own-atomic"
// injection reproduces Figure 3b's subtle bug — the owner advances its own
// head with a block-scope atomic, which looks harmless until another block
// steals from it concurrently.
package main

import (
	"fmt"
	"log"

	"scord"
	"scord/internal/scor"
)

func run(injections []string) {
	cfg := scord.DefaultConfig().WithDetector(scord.ModeCached)
	dev, err := scord.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}
	gcol := scor.NewGCOL()
	if err := gcol.Run(dev, injections); err != nil {
		// With the injected race the coloring may be invalid; that's the
		// bug manifesting.
		fmt.Println("  run:", err)
	}
	races := dev.Races()
	fmt.Printf("  cycles=%d, unique races=%d\n", dev.Stats().Cycles, len(races))
	shown := 0
	for _, r := range races {
		if shown == 5 {
			fmt.Println("   ...")
			break
		}
		fmt.Println("   ", dev.DescribeRecord(r))
		shown++
	}
}

func main() {
	fmt.Println("graph coloring with correct device-scope work stealing (Figure 3a):")
	run(nil)
	fmt.Println("\nwith the block-scope own-head atomic of Figure 3b (own-atomic):")
	run([]string{"own-atomic"})
}
