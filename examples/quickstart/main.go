// Quickstart: simulate a tiny GPU program with an insufficient-scope
// atomic and let ScoRD report the race.
//
// Two threadblocks (necessarily on different SMs) increment one global
// counter with *block-scope* atomics. Block scope only guarantees
// visibility within a threadblock, so the increments land in each SM's
// private L1 and the final value loses updates — and ScoRD flags every
// cross-block conflict as a scoped-atomic race (Table IV (d) of the
// paper).
package main

import (
	"fmt"
	"log"

	"scord"
)

func main() {
	cfg := scord.DefaultConfig().WithDetector(scord.ModeCached)
	dev, err := scord.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}

	counter := dev.Alloc("counter", 1)

	const perWarp = 16
	err = dev.Launch("increment", 2 /*blocks*/, 32 /*threads*/, func(c *scord.Ctx) {
		c.Site("counter.add")
		for i := 0; i < perWarp; i++ {
			// BUG: the other block never observes these increments.
			//scord:allow(scopelint/crossblock) this example exists to demonstrate exactly this bug
			c.AtomicAdd(counter, 1, scord.ScopeBlock)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counter = %d (expected %d — block-scope atomics lost updates)\n",
		dev.Mem().Read(counter), 2*perWarp)
	fmt.Printf("simulated cycles: %d\n\n", dev.Stats().Cycles)

	races := dev.Races()
	fmt.Printf("ScoRD detected %d unique race(s):\n", len(races))
	for _, r := range races {
		fmt.Println("  ", dev.DescribeRecord(r))
	}

	// The fix: device scope.
	dev2, err := scord.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}
	counter2 := dev2.Alloc("counter", 1)
	err = dev2.Launch("increment-fixed", 2, 32, func(c *scord.Ctx) {
		for i := 0; i < perWarp; i++ {
			c.AtomicAdd(counter2, 1, scord.ScopeDevice)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith device scope: counter = %d, races = %d\n",
		dev2.Mem().Read(counter2), len(dev2.Races()))
}
