// Treesearch: the paper's Figure 5 case study — scoped locks on work
// stacks in Unbalanced Tree Search.
//
// Every block keeps a local stack guarded by a block-scope lock (cheap:
// the lock variable is served from the SM's L1) and a global stack guarded
// by a device-scope lock (so any block can steal from it). The injections
// narrow the global lock's scope: an atomicCAS_block on a device-shared
// lock acquires a *different* lock on every SM, and mutual exclusion
// silently evaporates.
package main

import (
	"fmt"
	"log"

	"scord"
	"scord/internal/scor"
)

func run(label string, injections []string) {
	fmt.Printf("%s:\n", label)
	cfg := scord.DefaultConfig().WithDetector(scord.ModeCached)
	dev, err := scord.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}
	uts := scor.NewUTS()
	if err := uts.Run(dev, injections); err != nil {
		fmt.Println("  run:", err)
	}
	if al, ok := dev.Mem().FindAlloc("uts.processed"); ok {
		fmt.Printf("  nodes processed: %d\n", dev.Mem().Read(al.Base))
	}
	races := dev.Races()
	fmt.Printf("  cycles: %d, unique races: %d\n", dev.Stats().Cycles, len(races))
	for i, r := range races {
		if i == 4 {
			fmt.Println("   ...")
			break
		}
		fmt.Println("   ", dev.DescribeRecord(r))
	}
	fmt.Println()
}

func main() {
	run("correct scoped locking (Figure 5)", nil)
	run("global lock acquired with atomicCAS_block", []string{"glock-cas-block"})
	run("global lock released with atomicExch_block", []string{"glock-exch-block"})
}
