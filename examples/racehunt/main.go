// Racehunt: sweep the 32 ScoR microbenchmarks under ScoRD and the four
// comparison detector models (LDetector, HAccRG, Barracuda, CURD), and
// print which detector catches which class of race — a miniature of the
// paper's Table VIII, measured instead of cited.
package main

import (
	"fmt"
	"log"

	"scord"
	"scord/internal/detectors"
	"scord/internal/scor"
	"scord/internal/scor/micro"
)

func main() {
	names := []string{"LDetector", "HAccRG", "Barracuda", "CURD", "ScoRD"}
	fmt.Printf("%-38s %-6s", "microbenchmark", "racey")
	for _, n := range names {
		fmt.Printf(" %-10s", n)
	}
	fmt.Println()

	for _, m := range micro.All() {
		cfg := scord.DefaultConfig().WithDetector(scord.ModeFull4B)
		dev, err := scord.NewDevice(cfg)
		if err != nil {
			log.Fatal(err)
		}
		models := detectors.All()
		for _, mod := range models {
			dev.AddChecker(mod)
		}
		if err := m.Run(dev, nil); err != nil {
			log.Fatalf("%s: %v", m.Name(), err)
		}

		specs := m.ExpectedRaces(nil)
		verdict := func(recs []scord.RaceRecord) string {
			res := scor.MatchRecords(dev.Mem(), recs, specs)
			switch {
			case m.Racey() && len(res.Missed) == 0:
				return "caught"
			case m.Racey():
				return "MISSED"
			case res.AllRecords > 0:
				return "FALSE-POS"
			default:
				return "clean"
			}
		}

		fmt.Printf("%-38s %-6v", m.Name(), m.Racey())
		for _, mod := range models {
			fmt.Printf(" %-10s", verdict(mod.Records()))
		}
		fmt.Printf(" %-10s\n", verdict(dev.Races()))
	}
}
