// Benchmarks that regenerate every table and figure of the ScoRD paper's
// evaluation (Section V). Each benchmark runs the corresponding harness
// experiment and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Per-row data is printed once per
// benchmark via b.Logf (visible with -v).
package scord_test

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"scord/internal/config"
	"scord/internal/gpu"
	"scord/internal/harness"
	"scord/internal/mem"
	"scord/internal/obs"
	"scord/internal/replay"
	"scord/internal/scor"
	"scord/internal/scor/micro"
	"scord/internal/tracefile"
)

func opts() harness.Options { return harness.Options{} }

// BenchmarkTable1_Micro runs the 32 microbenchmarks of Table I under ScoRD.
func BenchmarkTable1_Micro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		racey := 0
		for _, m := range micro.All() {
			d, err := gpu.New(config.Default().WithDetector(config.ModeCached))
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(d, nil); err != nil {
				b.Fatal(err)
			}
			if m.Racey() {
				racey++
			}
		}
		b.ReportMetric(float64(racey), "racey-tests")
		b.ReportMetric(float64(len(micro.All())-racey), "nonracey-tests")
	}
}

// BenchmarkTable2_Apps runs the seven applications of Table II, correctly
// synchronized, under ScoRD.
func BenchmarkTable2_Apps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var cycles uint64
		for _, app := range scor.Apps() {
			d, err := gpu.New(config.Default().WithDetector(config.ModeCached))
			if err != nil {
				b.Fatal(err)
			}
			if err := app.Run(d, nil); err != nil {
				b.Fatal(err)
			}
			cycles += d.Stats().Cycles
		}
		b.ReportMetric(float64(cycles), "total-sim-cycles")
	}
}

// BenchmarkTable6_RacesCaught regenerates Table VI: 44 unique races across
// the suite, caught by the base design and by ScoRD.
func BenchmarkTable6_RacesCaught(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t6, err := harness.RunTable6(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(t6.Total.Present), "races-present")
		b.ReportMetric(float64(t6.Total.Base), "caught-base")
		b.ReportMetric(float64(t6.Total.ScoRD), "caught-scord")
		if i == 0 {
			b.Logf("\n%s", t6.Render())
		}
	}
}

// BenchmarkTable7_FalsePositives regenerates Table VII: false positives
// versus metadata tracking granularity.
func BenchmarkTable7_FalsePositives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t7, err := harness.RunTable7(opts())
		if err != nil {
			b.Fatal(err)
		}
		fp4, fpScoRD := 0, 0
		for _, r := range t7.Rows {
			fp4 += r.FP4B
			fpScoRD += r.ScoRD
		}
		b.ReportMetric(float64(fp4), "fp-4byte")
		b.ReportMetric(float64(fpScoRD), "fp-scord")
		if i == 0 {
			b.Logf("\n%s", t7.Render())
		}
	}
}

// BenchmarkTable8_DetectorMatrix regenerates Table VIII: the capability
// matrix of LDetector/HAccRG/Barracuda/CURD/ScoRD, measured on the
// microbenchmark suite.
func BenchmarkTable8_DetectorMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t8, err := harness.RunTable8(opts())
		if err != nil {
			b.Fatal(err)
		}
		last := t8.Rows[len(t8.Rows)-1] // ScoRD row
		caught := last.Fences.Caught + last.Locks.Caught +
			last.ScopedFences.Caught + last.ScopedAtomics.Caught
		b.ReportMetric(float64(caught), "scord-caught")
		b.ReportMetric(float64(last.FalsePositives), "scord-fps")
		if i == 0 {
			b.Logf("\n%s", t8.Render())
		}
	}
}

// BenchmarkFig8_Performance regenerates Figure 8: execution cycles under
// the base design and ScoRD, normalized to no race detection.
func BenchmarkFig8_Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f8, err := harness.RunFig8(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f8.GeoScoRD, "scord-slowdown-geomean")
		b.ReportMetric(f8.GeoBase, "base-slowdown-geomean")
		if i == 0 {
			b.Logf("\n%s", f8.Render())
		}
	}
}

// BenchmarkFig9_DRAM regenerates Figure 9: DRAM accesses split into data
// and metadata, normalized to no race detection.
func BenchmarkFig9_DRAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f9, err := harness.RunFig9(opts())
		if err != nil {
			b.Fatal(err)
		}
		var baseMeta, scordMeta float64
		for _, r := range f9.Rows {
			baseMeta += r.BaseMeta
			scordMeta += r.ScoRDMeta
		}
		n := float64(len(f9.Rows))
		b.ReportMetric(baseMeta/n, "base-meta-dram-norm")
		b.ReportMetric(scordMeta/n, "scord-meta-dram-norm")
		if i == 0 {
			b.Logf("\n%s", f9.Render())
		}
	}
}

// BenchmarkFig10_Breakdown regenerates Figure 10: the LHD/NOC/MD overhead
// attribution.
func BenchmarkFig10_Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f10, err := harness.RunFig10(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f10.AvgLHD, "lhd-pct")
		b.ReportMetric(100*f10.AvgNOC, "noc-pct")
		b.ReportMetric(100*f10.AvgMD, "md-pct")
		if i == 0 {
			b.Logf("\n%s", f10.Render())
		}
	}
}

// BenchmarkAblationCacheRatio sweeps the software metadata cache ratio
// (DESIGN.md's first design-choice ablation).
func BenchmarkAblationCacheRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := harness.RunAblationCacheRatio(opts())
		if err != nil {
			b.Fatal(err)
		}
		def := a.Rows[2] // 16:1
		b.ReportMetric(def.Slowdown, "slowdown-at-16to1")
		b.ReportMetric(float64(def.Caught), "races-caught-at-16to1")
		if i == 0 {
			b.Logf("\n%s", a.Render())
		}
	}
}

// BenchmarkAblationInbox sweeps the detector inbox size.
func BenchmarkAblationInbox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := harness.RunAblationInbox(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(a.Rows[0].Stalls), "stalls-at-inbox1")
		if i == 0 {
			b.Logf("\n%s", a.Render())
		}
	}
}

// BenchmarkAblationRate sweeps the detector service rate.
func BenchmarkAblationRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := harness.RunAblationRate(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Rows[0].Slowdown, "slowdown-at-rate1")
		b.ReportMetric(a.Rows[2].Slowdown, "slowdown-at-rate4")
		if i == 0 {
			b.Logf("\n%s", a.Render())
		}
	}
}

// BenchmarkObsOverhead quantifies the observability tax on the device hot
// path: one kernel run with every observer detached (the default), with a
// cycle-domain sampler attached, and with a live cycle gauge watched.
// Compare the sub-benchmarks with -benchmem — the acceptance gate is that
// "detached" matches a bare run exactly (observers you don't attach cost
// nothing; the per-request fast path is additionally pinned to zero
// allocations by obs.TestSamplerFastPathAllocationFree).
func BenchmarkObsOverhead(b *testing.B) {
	runOnce := func(b *testing.B, attach func(d *gpu.Device) func(now uint64)) {
		d, err := gpu.New(config.Default().WithDetector(config.ModeCached))
		if err != nil {
			b.Fatal(err)
		}
		finish := attach(d)
		buf := d.Alloc("buf", 1<<16)
		if err := d.Launch("obs.bench", 8, 64, func(c *gpu.Ctx) {
			base := buf + mem.Addr(c.GlobalWarp()*1024)
			for i := 0; i < 64; i++ {
				c.Store(base+mem.Addr(4*i), uint32(i))
				c.Work(3)
				c.Load(base + mem.Addr(4*i))
			}
			c.SyncThreads()
			c.Fence(gpu.ScopeDevice)
		}); err != nil {
			b.Fatal(err)
		}
		finish(d.Cycles())
	}
	b.Run("detached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runOnce(b, func(d *gpu.Device) func(uint64) { return func(uint64) {} })
		}
	})
	b.Run("sampler-10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runOnce(b, func(d *gpu.Device) func(uint64) {
				s := obs.NewSampler(d, 10_000, &obs.Series{Label: "bench"})
				d.SetProbe(s)
				return s.Flush
			})
		}
	})
	b.Run("cycle-gauge", func(b *testing.B) {
		b.ReportAllocs()
		var g atomic.Uint64
		for i := 0; i < b.N; i++ {
			runOnce(b, func(d *gpu.Device) func(uint64) {
				d.WatchCycles(&g)
				return func(uint64) {}
			})
		}
	})
}

// BenchmarkReplayVsSim compares one full timing simulation of an
// application against replaying its recorded memory-op trace through the
// same detector. Both sub-benchmarks produce the identical race set and
// detector counters; the replay must be at least an order of magnitude
// faster (the acceptance gate for the record/replay subsystem), and the
// speedup factor is reported as a custom metric on the replay run.
func BenchmarkReplayVsSim(b *testing.B) {
	cfg := config.Default().WithDetector(config.ModeFull4B)
	bench := func() scor.Benchmark { return scor.NewGCOL() }

	runSim := func(b *testing.B) time.Duration {
		start := time.Now()
		d, err := gpu.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := bench().Run(d, nil); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}

	// Record once; replay iterations reuse the decoded op sequence, which
	// is exactly the record-once-replay-many shape the subsystem exists for.
	var buf bytes.Buffer
	tw, err := tracefile.NewWriter(&buf, tracefile.NewHeader(bench().Name(), nil, cfg))
	if err != nil {
		b.Fatal(err)
	}
	d, err := gpu.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	d.SetOpSink(tw)
	if err := bench().Run(d, nil); err != nil {
		b.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	tr, err := tracefile.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	ops, err := replay.ReadAll(tr)
	if err != nil {
		b.Fatal(err)
	}

	runReplay := func(b *testing.B) time.Duration {
		start := time.Now()
		sc, err := replay.NewScoRD(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := replay.RunOps(tr.Header(), ops, sc); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}

	var simTotal, replayTotal time.Duration
	var simN, replayN int
	b.Run("sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simTotal += runSim(b)
			simN++
		}
	})
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replayTotal += runReplay(b)
			replayN++
		}
		if simN > 0 && replayTotal > 0 {
			speedup := (simTotal.Seconds() / float64(simN)) /
				(replayTotal.Seconds() / float64(replayN))
			b.ReportMetric(speedup, "sim/replay-speedup")
		}
		b.ReportMetric(float64(len(ops)), "trace-ops")
	})
}

// BenchmarkFig11_Sensitivity regenerates Figure 11: ScoRD's slowdown under
// constrained, default, and generous memory subsystems.
func BenchmarkFig11_Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f11, err := harness.RunFig11(opts())
		if err != nil {
			b.Fatal(err)
		}
		var low, def, high float64
		for _, r := range f11.Rows {
			low += r.Low
			def += r.Default
			high += r.High
		}
		n := float64(len(f11.Rows))
		b.ReportMetric(low/n, "low-mem-slowdown")
		b.ReportMetric(def/n, "default-slowdown")
		b.ReportMetric(high/n, "high-mem-slowdown")
		if i == 0 {
			b.Logf("\n%s", f11.Render())
		}
	}
}
